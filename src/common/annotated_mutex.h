#pragma once
// Clang thread-safety-annotated synchronisation primitives.
//
// Every mutex in the tree is one of these wrappers, never a raw
// std::mutex / std::condition_variable (scripts/lint_invariants.sh
// enforces this).  Under Clang the annotations turn the locking
// discipline documented in docs/ARCHITECTURE.md into compile errors
// (-Werror=thread-safety in the CI clang lane); under GCC they expand
// to nothing and the wrappers are zero-cost pass-throughs, so the
// tier-1 build is unaffected.
//
// The macro set below is the standard one from the Clang
// thread-safety-analysis documentation.  Conventions used across the
// tree:
//   * shared fields:           T x GUARDED_BY(mutex_);
//   * helpers expecting a held lock (the `*_locked` suffix):
//                              void f() REQUIRES(mutex_);
//   * public entry points that must NOT hold the lock:
//                              void g() EXCLUDES(mutex_);
//   * intentional unlocked fast-paths carry an explicit
//     AssertHeld()/comment escape hatch at the access site, never a
//     blanket NO_THREAD_SAFETY_ANALYSIS on the whole function.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define XYSIG_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define XYSIG_THREAD_ANNOTATION__(x)  // no-op on GCC and others
#endif

#define CAPABILITY(x) XYSIG_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY XYSIG_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) XYSIG_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) XYSIG_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) XYSIG_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) XYSIG_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) XYSIG_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  XYSIG_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) XYSIG_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  XYSIG_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) XYSIG_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  XYSIG_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  XYSIG_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) XYSIG_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) XYSIG_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) XYSIG_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) XYSIG_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS XYSIG_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace xysig {

class CondVar;
class MutexLock;

// Annotated std::mutex.  Prefer MutexLock over manual lock()/unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  // Documentation + analysis escape hatch for intentional
  // lock-already-held access sites: tells the analysis (not the
  // runtime — std::mutex cannot check ownership) that this thread
  // holds the mutex here.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

// Scoped lock guard over Mutex, the annotated stand-in for both
// std::lock_guard and std::unique_lock.  Lock()/Unlock() support the
// unlock-work-relock pattern (e.g. emitting a line outside the lock
// inside a CondVar wait loop); the destructor releases only if held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Lock() ACQUIRE() { lock_.lock(); }
  void Unlock() RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Annotated std::condition_variable.  Waits take the MutexLock guard;
// from the analysis's point of view the lock is held across the wait,
// which is exactly the contract predicate bodies rely on when they
// read GUARDED_BY fields.  Predicate lambdas are analysed as separate
// functions, so annotate them REQUIRES(the_mutex); the wait methods
// themselves are the one sanctioned NO_THREAD_SAFETY_ANALYSIS site in
// the tree — they invoke the predicate through the underlying
// std::unique_lock, a mapping the analysis cannot see through.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Predicate>
  void wait(MutexLock& lock, Predicate pred) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <class Rep, class Period, class Predicate>
  bool wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(lock.lock_, dur, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace xysig
