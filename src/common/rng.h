#ifndef XYSIG_COMMON_RNG_H
#define XYSIG_COMMON_RNG_H

/// \file rng.h
/// Deterministic random number generation.
///
/// All stochastic components of the library (signal noise, Monte-Carlo
/// process/mismatch sampling) draw from an explicitly seeded Rng passed in by
/// the caller — there is no global generator. Streams derived from a parent
/// generator via fork() are independent, which lets a Monte-Carlo run assign
/// one stream per sample so results do not depend on evaluation order.

#include <cstdint>
#include <random>

namespace xysig {

/// Seeded pseudo-random generator (mt19937_64) with library-level helpers.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /// Seed this generator was constructed with (reported by benches so every
    /// published number is reproducible).
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);

    /// Normal with the given mean and standard deviation. sigma >= 0.
    [[nodiscard]] double normal(double mu = 0.0, double sigma = 1.0);

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Bernoulli draw with probability p of true.
    [[nodiscard]] bool bernoulli(double p);

    /// Derives an independent child stream; deterministic in (seed, calls so
    /// far). Each Monte-Carlo sample gets its own fork so adding observables
    /// to one sample never perturbs another.
    [[nodiscard]] Rng fork();

    /// Access to the raw engine for std distributions not wrapped here.
    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

} // namespace xysig

#endif // XYSIG_COMMON_RNG_H
