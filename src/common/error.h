#ifndef XYSIG_COMMON_ERROR_H
#define XYSIG_COMMON_ERROR_H

/// \file error.h
/// Exception hierarchy for the xysig library.
///
/// All errors thrown by the library derive from xysig::Error so callers can
/// catch library failures with a single handler while still distinguishing
/// categories (contract violations, numerical failures, malformed input).

#include <stdexcept>
#include <string>

namespace xysig {

/// Root of the xysig exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A precondition, postcondition or invariant check failed.
///
/// Raised by the XYSIG_EXPECTS / XYSIG_ENSURES macros in contracts.h; carries
/// the failing expression and source location in its message.
class ContractError : public Error {
public:
    explicit ContractError(const std::string& what_arg) : Error(what_arg) {}
};

/// A numerical procedure failed to produce a usable result
/// (singular matrix, Newton-Raphson divergence, root bracketing failure...).
class NumericError : public Error {
public:
    explicit NumericError(const std::string& what_arg) : Error(what_arg) {}
};

/// Structurally invalid user input (bad netlist, malformed SPICE deck,
/// inconsistent monitor configuration...).
class InvalidInput : public Error {
public:
    explicit InvalidInput(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {
/// Builds the message and throws ContractError. Out-of-line so the throw
/// machinery is not inlined at every check site.
[[noreturn]] void throw_contract_violation(const char* kind, const char* expr,
                                           const char* file, int line);
} // namespace detail

} // namespace xysig

#endif // XYSIG_COMMON_ERROR_H
