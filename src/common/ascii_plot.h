#ifndef XYSIG_COMMON_ASCII_PLOT_H
#define XYSIG_COMMON_ASCII_PLOT_H

/// \file ascii_plot.h
/// Character-cell plotting so every bench can render its figure inline in the
/// terminal output (the paper's figures are reproduced as data series + an
/// ASCII rendering for eyeballing the shape).

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace xysig {

/// Fixed-size character canvas with data-space to cell-space mapping.
class AsciiCanvas {
public:
    /// Data-space window [x_min,x_max] x [y_min,y_max] rendered into a
    /// width x height character grid.
    AsciiCanvas(double x_min, double x_max, double y_min, double y_max,
                std::size_t width = 72, std::size_t height = 28);

    /// Plots one point; out-of-window points are silently clipped.
    void point(double x, double y, char glyph = '*');

    /// Plots a polyline as a dense sequence of points.
    void polyline(std::span<const double> xs, std::span<const double> ys,
                  char glyph = '*');

    /// Renders with a simple frame and axis extents annotated.
    void print(std::ostream& out, const std::string& title = {}) const;

private:
    double x_min_, x_max_, y_min_, y_max_;
    std::size_t width_, height_;
    std::vector<std::string> grid_;
};

/// One-call line chart of y(x) with autoscaled window.
void ascii_plot_series(std::ostream& out, std::span<const double> xs,
                       std::span<const double> ys, const std::string& title,
                       char glyph = '*');

} // namespace xysig

#endif // XYSIG_COMMON_ASCII_PLOT_H
