#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/contracts.h"

namespace xysig {

namespace {

thread_local bool t_in_parallel_region = false;
thread_local bool t_is_pool_worker = false;

/// RAII flag so exceptions unwind the nesting marker correctly.
struct RegionGuard {
    bool previous;
    RegionGuard() : previous(t_in_parallel_region) { t_in_parallel_region = true; }
    ~RegionGuard() { t_in_parallel_region = previous; }
};

} // namespace

unsigned default_thread_count() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return std::max(hw, 4u);
}

bool in_parallel_region() noexcept { return t_in_parallel_region; }

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : thread_count_(threads == 0 ? default_thread_count() : threads),
      capacity_(queue_capacity) {
    XYSIG_EXPECTS(queue_capacity >= 1);
    // Workers start pulling on mutex_ immediately, so populate workers_
    // under the lock like every other access to it.
    MutexLock lock(mutex_);
    workers_.reserve(thread_count_);
    for (unsigned i = 0; i < thread_count_; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
    t_is_pool_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            cv_task_.wait(lock, [this]() REQUIRES(mutex_) {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            cv_space_.notify_one();
        }
        try {
            task();
        } catch (...) {
            MutexLock lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            MutexLock lock(mutex_);
            if (--in_flight_ == 0)
                cv_idle_.notify_all();
        }
    }
}

void ThreadPool::submit(std::function<void()> task) {
    XYSIG_EXPECTS(task != nullptr);
    {
        MutexLock lock(mutex_);
        cv_space_.wait(lock, [this]() REQUIRES(mutex_) {
            return stopping_ || queue_.size() < capacity_;
        });
        if (stopping_)
            throw std::runtime_error("ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    MutexLock lock(mutex_);
    cv_idle_.wait(lock, [this]() REQUIRES(mutex_) { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.Unlock();
        std::rethrow_exception(err);
    }
}

void ThreadPool::shutdown() {
    // Claim the worker handles under the lock so concurrent shutdown()
    // calls (e.g. an explicit shutdown racing the destructor) each join a
    // disjoint — possibly empty — set of threads.
    std::vector<std::thread> claimed;
    {
        MutexLock lock(mutex_);
        stopping_ = true;
        claimed.swap(workers_);
    }
    cv_task_.notify_all();
    cv_space_.notify_all();
    for (auto& w : claimed)
        if (w.joinable())
            w.join();
}

ThreadPool& ThreadPool::shared() {
    // Leaked on purpose: workers must outlive all static destructors that
    // might still evaluate batches during teardown.
    static ThreadPool* pool = new ThreadPool();
    return *pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads) {
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    const unsigned requested = threads == 0 ? default_thread_count() : threads;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(requested, n));

    // Serial fallback for nested loops AND for calls made from any pool
    // worker (e.g. a task submitted directly to ThreadPool::shared() that
    // calls into the batch engine): a worker that blocked waiting for
    // helper tasks could starve the queue of the very workers needed to
    // run them.
    if (workers <= 1 || t_in_parallel_region || t_is_pool_worker) {
        RegionGuard guard;
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    // Chunked dynamic scheduling: workers pull [i, i+grain) ranges off an
    // atomic cursor, so uneven per-index cost balances automatically while
    // keeping per-task overhead amortised.
    struct Shared {
        std::atomic<std::size_t> next;
        std::atomic<bool> cancelled{false};
        Mutex mutex;
        CondVar done_cv;
        std::size_t active GUARDED_BY(mutex) = 0;
        std::exception_ptr error GUARDED_BY(mutex);
    };
    auto shared = std::make_shared<Shared>();
    shared->next.store(begin, std::memory_order_relaxed);
    const std::size_t grain = std::max<std::size_t>(1, n / (8u * workers));

    const auto run_chunks = [shared, end, grain, &body] {
        RegionGuard guard;
        while (!shared->cancelled.load(std::memory_order_relaxed)) {
            const std::size_t i =
                shared->next.fetch_add(grain, std::memory_order_relaxed);
            if (i >= end)
                return;
            const std::size_t stop = std::min(end, i + grain);
            try {
                for (std::size_t k = i; k < stop; ++k)
                    body(k);
            } catch (...) {
                MutexLock lock(shared->mutex);
                if (!shared->error)
                    shared->error = std::current_exception();
                shared->cancelled.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    {
        MutexLock lock(shared->mutex);
        shared->active = workers - 1;
    }
    ThreadPool& pool = ThreadPool::shared();
    for (unsigned w = 0; w + 1 < workers; ++w) {
        pool.submit([shared, run_chunks] {
            run_chunks();
            MutexLock lock(shared->mutex);
            if (--shared->active == 0)
                shared->done_cv.notify_all();
        });
    }

    run_chunks(); // the caller is a worker too: progress without pool slots

    MutexLock lock(shared->mutex);
    shared->done_cv.wait(lock, [&]() REQUIRES(shared->mutex) {
        return shared->active == 0;
    });
    if (shared->error)
        std::rethrow_exception(shared->error);
}

} // namespace xysig
