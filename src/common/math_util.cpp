#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"

namespace xysig {

bool approx_equal(double a, double b, double rtol, double atol) noexcept {
    const double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= atol + rtol * scale;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
    XYSIG_EXPECTS(n >= 2);
    std::vector<double> out(n);
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = lo + static_cast<double>(i) * step;
    out.back() = hi; // avoid accumulated rounding at the endpoint
    return out;
}

double clamp(double x, double lo, double hi) {
    XYSIG_EXPECTS(lo <= hi);
    return std::min(std::max(x, lo), hi);
}

double softplus(double x) noexcept {
    // For large x, ln(1+e^x) = x + ln(1+e^-x) ~= x; switch to avoid overflow.
    if (x > 30.0)
        return x;
    if (x < -30.0)
        return std::exp(x); // ln(1+e^x) ~= e^x for very negative x
    return std::log1p(std::exp(x));
}

double logistic(double x) noexcept {
    if (x >= 0.0) {
        const double e = std::exp(-x);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(x);
    return e / (1.0 + e);
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const BisectOptions& opts) {
    XYSIG_EXPECTS(lo <= hi);
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0) // xylint: exact-compare(an exact root ends bisection early)
        return lo;
    if (fhi == 0.0) // xylint: exact-compare(an exact root ends bisection early)
        return hi;
    if ((flo > 0.0) == (fhi > 0.0))
        throw NumericError("bisect: endpoints do not bracket a root");

    for (int i = 0; i < opts.max_iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        // xylint: exact-compare(an exact root ends bisection early)
        if (fmid == 0.0 || (hi - lo) < opts.xtol)
            return mid;
        if ((fmid > 0.0) == (flo > 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

std::int64_t gcd_i64(std::int64_t a, std::int64_t b) noexcept {
    a = std::abs(a);
    b = std::abs(b);
    while (b != 0) {
        const std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

std::int64_t lcm_i64(std::int64_t a, std::int64_t b) {
    if (a == 0 || b == 0)
        return 0;
    const std::int64_t g = gcd_i64(a, b);
    const std::int64_t part = std::abs(a) / g;
    const std::int64_t bb = std::abs(b);
    if (part > std::numeric_limits<std::int64_t>::max() / bb)
        throw NumericError("lcm_i64: overflow");
    return part * bb;
}

Rational::Rational(std::int64_t numerator, std::int64_t denominator) {
    if (denominator == 0)
        throw NumericError("Rational: zero denominator");
    if (denominator < 0) {
        numerator = -numerator;
        denominator = -denominator;
    }
    const std::int64_t g = gcd_i64(numerator, denominator);
    num_ = (g == 0) ? 0 : numerator / g;
    den_ = (g == 0) ? 1 : denominator / g;
}

Rational operator+(const Rational& a, const Rational& b) {
    return Rational{a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_};
}

Rational operator*(const Rational& a, const Rational& b) {
    return Rational{a.num_ * b.num_, a.den_ * b.den_};
}

Rational to_rational(double x, std::int64_t max_denominator) {
    XYSIG_EXPECTS(max_denominator >= 1);
    XYSIG_EXPECTS(std::isfinite(x));

    const bool negative = x < 0.0;
    double v = std::abs(x);

    // Continued fraction expansion with convergents p/q.
    std::int64_t p0 = 0, q0 = 1;
    std::int64_t p1 = 1, q1 = 0;
    for (int i = 0; i < 64; ++i) {
        const double a_f = std::floor(v);
        if (a_f > static_cast<double>(std::numeric_limits<std::int64_t>::max() / 2))
            break;
        const auto a = static_cast<std::int64_t>(a_f);
        const std::int64_t p2 = a * p1 + p0;
        const std::int64_t q2 = a * q1 + q0;
        if (q2 > max_denominator)
            break;
        p0 = p1;
        q0 = q1;
        p1 = p2;
        q1 = q2;
        const double frac = v - a_f;
        if (frac < 1e-15)
            break;
        v = 1.0 / frac;
    }
    if (q1 == 0)
        return Rational{0, 1};
    return Rational{negative ? -p1 : p1, q1};
}

} // namespace xysig
