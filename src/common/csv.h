#ifndef XYSIG_COMMON_CSV_H
#define XYSIG_COMMON_CSV_H

/// \file csv.h
/// Minimal CSV emission for benchmark series so figures can be re-plotted
/// externally (gnuplot / matplotlib) from the bench output files.

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace xysig {

/// Streams rows of mixed text/numeric cells as RFC-4180-ish CSV. Cells
/// containing commas, quotes or newlines are quoted and escaped.
class CsvWriter {
public:
    /// Writes to an externally owned stream; the writer never owns it.
    explicit CsvWriter(std::ostream& out) : out_(&out) {}

    void write_header(std::span<const std::string> names);
    void write_row(std::span<const double> values);
    void write_row(std::span<const std::string> cells);

    /// Convenience: one labelled series, x column + y column.
    static void write_series(std::ostream& out, const std::string& x_name,
                             std::span<const double> xs, const std::string& y_name,
                             std::span<const double> ys);

private:
    void write_cells(std::span<const std::string> cells);

    std::ostream* out_;
};

/// Escapes a single CSV cell per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& cell);

} // namespace xysig

#endif // XYSIG_COMMON_CSV_H
