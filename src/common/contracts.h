#ifndef XYSIG_COMMON_CONTRACTS_H
#define XYSIG_COMMON_CONTRACTS_H

/// \file contracts.h
/// Always-on, throwing contract checks (I.6/I.8-style Expects/Ensures).
///
/// The checks throw xysig::ContractError instead of aborting so that tests
/// can assert on contract violations and callers embedding the library in a
/// long-running tool can recover. They are deliberately kept enabled in all
/// build types: every guarded expression in this library is O(1).

#include "common/error.h"

/// Precondition check: argument/state requirements at function entry.
#define XYSIG_EXPECTS(expr)                                                      \
    do {                                                                         \
        if (!(expr))                                                             \
            ::xysig::detail::throw_contract_violation("precondition", #expr,    \
                                                      __FILE__, __LINE__);      \
    } while (false)

/// Postcondition check: guarantees at function exit.
#define XYSIG_ENSURES(expr)                                                      \
    do {                                                                         \
        if (!(expr))                                                             \
            ::xysig::detail::throw_contract_violation("postcondition", #expr,   \
                                                      __FILE__, __LINE__);      \
    } while (false)

/// Invariant check inside algorithms ("this cannot happen" guard).
#define XYSIG_ASSERT(expr)                                                       \
    do {                                                                         \
        if (!(expr))                                                             \
            ::xysig::detail::throw_contract_violation("invariant", #expr,       \
                                                      __FILE__, __LINE__);      \
    } while (false)

#endif // XYSIG_COMMON_CONTRACTS_H
