#ifndef XYSIG_COMMON_PARALLEL_H
#define XYSIG_COMMON_PARALLEL_H

/// \file parallel.h
/// Thread-pool subsystem backing the batch evaluation engine.
///
/// The Monte-Carlo studies and fault-universe sweeps evaluate thousands of
/// independent (CUT, RNG stream) samples; this header provides the two
/// primitives they build on:
///  * ThreadPool — a fixed set of workers draining a bounded task queue
///    (submission applies backpressure instead of growing without bound);
///  * parallel_for — a blocking data-parallel loop on a process-wide shared
///    pool, with chunked work stealing, exception propagation to the
///    caller, and serial fallback for nested invocations.
///
/// Determinism contract: parallel_for imposes no ordering on body
/// invocations, so callers keep results reproducible by writing each index
/// to its own output slot and deriving randomness from pre-forked
/// per-index streams (see mc::run_monte_carlo_parallel).

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace xysig {

/// Worker count used when a caller passes threads == 0: the hardware
/// concurrency, but at least 4 so oversubscription demos and thread-count
/// sweeps behave the same on small CI machines.
[[nodiscard]] unsigned default_thread_count() noexcept;

/// Fixed-size worker pool with a bounded FIFO task queue.
///
/// submit() blocks while the queue is full (backpressure). Tasks should not
/// throw; if one does, the first exception is captured and rethrown from the
/// next wait_idle() call (the destructor drains and swallows instead, since
/// destructors must not throw).
class ThreadPool {
public:
    /// \param threads        worker count; 0 means default_thread_count()
    /// \param queue_capacity maximum queued (not yet running) tasks
    explicit ThreadPool(unsigned threads = 0, std::size_t queue_capacity = 1024);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task; blocks while the queue is at capacity. Throws
    /// std::runtime_error if the pool has been shut down.
    void submit(std::function<void()> task) EXCLUDES(mutex_);

    /// Blocks until every submitted task has finished; rethrows the first
    /// exception a task leaked since the previous wait (if any).
    void wait_idle() EXCLUDES(mutex_);

    /// Drains outstanding tasks and joins the workers. Idempotent; submit()
    /// afterwards throws.
    void shutdown() EXCLUDES(mutex_);

    /// The pool's worker count, fixed at construction. Deliberately an
    /// immutable copy rather than workers_.size(): shutdown() swaps the
    /// worker handles out under mutex_, so sizing off the vector would race
    /// with (and change answer across) a concurrent shutdown.
    [[nodiscard]] unsigned thread_count() const noexcept { return thread_count_; }

    /// Process-wide pool used by parallel_for. Created on first use with
    /// default_thread_count() workers; never destroyed before exit.
    [[nodiscard]] static ThreadPool& shared();

private:
    void worker_loop() EXCLUDES(mutex_);

    const unsigned thread_count_;
    mutable Mutex mutex_;
    std::vector<std::thread> workers_ GUARDED_BY(mutex_);
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    CondVar cv_task_;  ///< signalled when work is available
    CondVar cv_space_; ///< signalled when queue space frees
    CondVar cv_idle_;  ///< signalled when in-flight hits zero
    const std::size_t capacity_;
    std::size_t in_flight_ GUARDED_BY(mutex_) = 0; ///< queued + running tasks
    std::exception_ptr first_error_ GUARDED_BY(mutex_);
    bool stopping_ GUARDED_BY(mutex_) = false;
};

/// True while the current thread is executing inside a parallel_for body;
/// nested parallel_for calls detect this and degrade to a serial loop
/// instead of deadlocking on the shared pool.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Runs body(i) for every i in [begin, end), distributing contiguous chunks
/// over up to `threads` workers (0 means default_thread_count()). Blocks
/// until the whole range is done. The calling thread participates as one of
/// the workers, so progress is guaranteed even when the shared pool is
/// saturated. Calls from inside a parallel_for body or from any ThreadPool
/// worker thread degrade to a serial loop (a worker blocking on helper
/// tasks could otherwise starve the pool into deadlock). If any body
/// invocation throws, remaining chunks are abandoned and the first
/// exception is rethrown on the caller.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

} // namespace xysig

#endif // XYSIG_COMMON_PARALLEL_H
