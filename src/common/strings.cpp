#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/contracts.h"
#include "common/error.h"

namespace xysig {

namespace {

bool is_space(char c) noexcept {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

char lower(char c) noexcept {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

} // namespace

std::string_view trim(std::string_view s) noexcept {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(s[b]))
        ++b;
    while (e > b && is_space(s[e - 1]))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && delims.find(s[i]) != std::string_view::npos)
            ++i;
        std::size_t start = i;
        while (i < s.size() && delims.find(s[i]) == std::string_view::npos)
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    for (char& c : out)
        c = lower(c);
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (lower(a[i]) != lower(b[i]))
            return false;
    return true;
}

double parse_spice_number(std::string_view s) {
    s = trim(s);
    if (s.empty())
        throw InvalidInput("parse_spice_number: empty token");

    double value = 0.0;
    const char* begin = s.data();
    const char* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{})
        throw InvalidInput("parse_spice_number: cannot parse '" + std::string(s) + "'");

    std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
    if (suffix.empty())
        return value;

    // SPICE suffixes: anything after the recognised letters is a free-form
    // unit annotation ("4.7kohm" is valid), so match by prefix.
    const std::string suf = to_lower(suffix);
    struct Scale {
        std::string_view name;
        double factor;
    };
    // "meg" must be checked before "m" (milli).
    static constexpr Scale scales[] = {
        {"meg", 1e6}, {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6},
        {"m", 1e-3},  {"k", 1e3},   {"g", 1e9},   {"t", 1e12},
    };
    for (const auto& sc : scales) {
        if (starts_with(suf, sc.name))
            return value * sc.factor;
    }
    // Unrecognised pure-unit suffix like "v", "hz", "ohm": no scaling.
    for (char c : suf)
        if (!std::isalpha(static_cast<unsigned char>(c)))
            throw InvalidInput("parse_spice_number: bad suffix in '" + std::string(s) + "'");
    return value;
}

std::string format_double(double v, int significant_digits) {
    XYSIG_EXPECTS(significant_digits >= 1);
    std::ostringstream os;
    os.precision(significant_digits);
    os << v;
    return os.str();
}

std::string format_double_exact(double v) {
    char buf[48];
    const int n = std::snprintf(buf, sizeof(buf), "%a", v);
    XYSIG_ASSERT(n > 0 && static_cast<std::size_t>(n) < sizeof(buf));
    return std::string(buf, static_cast<std::size_t>(n));
}

std::string format_code_binary(unsigned code, unsigned bits) {
    XYSIG_EXPECTS(bits >= 1 && bits <= 32);
    std::string out(bits, '0');
    for (unsigned i = 0; i < bits; ++i) {
        if ((code >> i) & 1u)
            out[bits - 1 - i] = '1';
    }
    return out;
}

} // namespace xysig
