#ifndef XYSIG_COMMON_TABLE_H
#define XYSIG_COMMON_TABLE_H

/// \file table.h
/// Aligned plain-text tables for bench output — the "same rows the paper
/// reports" are printed through this.

#include <ostream>
#include <string>
#include <vector>

namespace xysig {

/// Collects rows of string cells and prints them column-aligned.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Adds a row; it must have exactly as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Convenience for numeric rows; formats with 6 significant digits.
    void add_numeric_row(const std::vector<double>& values);

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders with a header underline and two-space column gaps.
    void print(std::ostream& out) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xysig

#endif // XYSIG_COMMON_TABLE_H
