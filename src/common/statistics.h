#ifndef XYSIG_COMMON_STATISTICS_H
#define XYSIG_COMMON_STATISTICS_H

/// \file statistics.h
/// Descriptive statistics used by the Monte-Carlo engine, the noise
/// detectability analysis and the test suites.

#include <cstddef>
#include <span>
#include <vector>

namespace xysig {

/// Arithmetic mean. Requires a non-empty range.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Requires xs.size() >= 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Unbiased sample standard deviation. Requires xs.size() >= 2.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Requires non-empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Smallest / largest element. Requires non-empty input.
[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Pearson correlation of two equal-length sequences (>= 2 points). When
/// either series is constant the coefficient is mathematically undefined and
/// quiet NaN is returned (never throws/aborts on degenerate data — a sweep
/// with one flat column must keep running).
[[nodiscard]] double correlation(std::span<const double> xs, std::span<const double> ys);

/// Least-squares straight line y = slope*x + intercept through the points.
struct LineFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0; ///< coefficient of determination of the fit
};
/// Fits >= 2 points. Degenerate x (all equal) yields the defined fallback
/// {slope = 0, intercept = mean(y), r_squared = 0 (1 when y is constant
/// too)} instead of aborting; see the implementation note.
[[nodiscard]] LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Single-pass accumulator (Welford) for streaming mean/variance/min/max;
/// used where the Monte-Carlo engine cannot afford to keep all samples.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased variance; requires count() >= 2.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace xysig

#endif // XYSIG_COMMON_STATISTICS_H
