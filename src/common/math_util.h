#ifndef XYSIG_COMMON_MATH_UTIL_H
#define XYSIG_COMMON_MATH_UTIL_H

/// \file math_util.h
/// Small numerical helpers shared across the library: tolerant comparison,
/// grids, scalar root finding, rational arithmetic for period computation.

#include <cstdint>
#include <functional>
#include <vector>

namespace xysig {

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Thermal voltage kT/q at 300 K, used by the MOSFET models.
inline constexpr double kThermalVoltage300K = 0.025852;

/// True when |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] bool approx_equal(double a, double b, double rtol = 1e-9,
                                double atol = 1e-12) noexcept;

/// Linear interpolation between a and b; t in [0,1] maps to [a,b].
[[nodiscard]] constexpr double lerp(double a, double b, double t) noexcept {
    return a + t * (b - a);
}

/// n equally spaced points from lo to hi inclusive. n >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Clamp x into [lo, hi]. Requires lo <= hi.
[[nodiscard]] double clamp(double x, double lo, double hi);

/// Square helper so intent reads better than x*x at call sites with long
/// expressions.
[[nodiscard]] constexpr double square(double x) noexcept { return x * x; }

/// Numerically safe ln(1+exp(x)) (softplus); avoids overflow for large x.
[[nodiscard]] double softplus(double x) noexcept;

/// Derivative of softplus: logistic function 1/(1+exp(-x)).
[[nodiscard]] double logistic(double x) noexcept;

/// Options for bisection root finding.
struct BisectOptions {
    double xtol = 1e-12;       ///< stop when the bracket is narrower than this
    int max_iterations = 200;  ///< hard iteration cap
};

/// Finds a root of f in [lo, hi] by bisection.
///
/// Requires f(lo) and f(hi) to have opposite signs (a zero at an endpoint is
/// accepted). Throws NumericError when the bracket is invalid.
[[nodiscard]] double bisect(const std::function<double(double)>& f, double lo,
                            double hi, const BisectOptions& opts = {});

/// Exact rational number with i64 numerator/denominator, always normalised
/// (den > 0, gcd(num, den) == 1). Used to compute the common period of
/// multitone stimuli exactly.
class Rational {
public:
    constexpr Rational() = default;
    Rational(std::int64_t numerator, std::int64_t denominator);

    [[nodiscard]] std::int64_t num() const noexcept { return num_; }
    [[nodiscard]] std::int64_t den() const noexcept { return den_; }
    [[nodiscard]] double value() const noexcept {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

    friend Rational operator+(const Rational& a, const Rational& b);
    friend Rational operator*(const Rational& a, const Rational& b);
    friend bool operator==(const Rational& a, const Rational& b) noexcept = default;

private:
    std::int64_t num_ = 0;
    std::int64_t den_ = 1;
};

/// Greatest common divisor of |a| and |b|; gcd(0,0) == 0.
[[nodiscard]] std::int64_t gcd_i64(std::int64_t a, std::int64_t b) noexcept;

/// Least common multiple of |a| and |b|. Throws NumericError on overflow.
[[nodiscard]] std::int64_t lcm_i64(std::int64_t a, std::int64_t b);

/// Approximates x by a rational p/q with q <= max_denominator using continued
/// fractions. Used to detect rational frequency ratios of Lissajous signals.
[[nodiscard]] Rational to_rational(double x, std::int64_t max_denominator = 1 << 20);

} // namespace xysig

#endif // XYSIG_COMMON_MATH_UTIL_H
