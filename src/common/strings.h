#ifndef XYSIG_COMMON_STRINGS_H
#define XYSIG_COMMON_STRINGS_H

/// \file strings.h
/// Text helpers shared by the SPICE-deck parser and the report writers.

#include <string>
#include <string_view>
#include <vector>

namespace xysig {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on any run of the given delimiters; empty tokens are dropped.
[[nodiscard]] std::vector<std::string> split(std::string_view s,
                                             std::string_view delims = " \t");

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True when s starts with the given prefix (case-sensitive).
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Case-insensitive equality for ASCII strings (SPICE decks are case-blind).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Parses a floating point number with optional SPICE engineering suffix
/// (f p n u m k meg g t, case-insensitive, e.g. "4.7k", "180n", "2meg").
/// Throws InvalidInput on malformed text.
[[nodiscard]] double parse_spice_number(std::string_view s);

/// Formats v with the given number of significant digits.
[[nodiscard]] std::string format_double(double v, int significant_digits = 6);

/// Exact, round-trippable formatting (C hexfloat, "%a"): two doubles format
/// equal iff they are bit-identical (modulo -0.0/0.0 and NaN payloads).
/// Used to build cache keys that must never collide for distinct values.
[[nodiscard]] std::string format_double_exact(double v);

/// Formats an n-bit code as a binary string, MSB first (monitor 1 first),
/// e.g. code 30, 6 bits -> "011110" — the notation used in Fig. 6.
[[nodiscard]] std::string format_code_binary(unsigned code, unsigned bits);

} // namespace xysig

#endif // XYSIG_COMMON_STRINGS_H
