#include "common/table.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/strings.h"

namespace xysig {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    XYSIG_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
    XYSIG_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(const std::vector<double>& values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(format_double(v, 6));
    add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };

    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        print_row(row);
}

} // namespace xysig
