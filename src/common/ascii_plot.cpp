#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/statistics.h"
#include "common/strings.h"

namespace xysig {

AsciiCanvas::AsciiCanvas(double x_min, double x_max, double y_min, double y_max,
                         std::size_t width, std::size_t height)
    : x_min_(x_min), x_max_(x_max), y_min_(y_min), y_max_(y_max), width_(width),
      height_(height), grid_(height, std::string(width, ' ')) {
    XYSIG_EXPECTS(x_max > x_min);
    XYSIG_EXPECTS(y_max > y_min);
    XYSIG_EXPECTS(width >= 8 && height >= 4);
}

void AsciiCanvas::point(double x, double y, char glyph) {
    if (!std::isfinite(x) || !std::isfinite(y))
        return;
    if (x < x_min_ || x > x_max_ || y < y_min_ || y > y_max_)
        return;
    const double fx = (x - x_min_) / (x_max_ - x_min_);
    const double fy = (y - y_min_) / (y_max_ - y_min_);
    auto col = static_cast<std::size_t>(fx * static_cast<double>(width_ - 1) + 0.5);
    auto row = static_cast<std::size_t>(fy * static_cast<double>(height_ - 1) + 0.5);
    grid_[height_ - 1 - row][col] = glyph; // row 0 is the top of the canvas
}

void AsciiCanvas::polyline(std::span<const double> xs, std::span<const double> ys,
                           char glyph) {
    XYSIG_EXPECTS(xs.size() == ys.size());
    if (xs.empty())
        return;
    point(xs[0], ys[0], glyph);
    for (std::size_t i = 1; i < xs.size(); ++i) {
        // Interpolate between consecutive samples so steep segments stay
        // connected on the canvas.
        const double dx = xs[i] - xs[i - 1];
        const double dy = ys[i] - ys[i - 1];
        const double span_x = (x_max_ - x_min_) / static_cast<double>(width_);
        const double span_y = (y_max_ - y_min_) / static_cast<double>(height_);
        const double steps_f = std::max(std::abs(dx) / span_x, std::abs(dy) / span_y);
        const int steps = std::max(1, static_cast<int>(std::ceil(steps_f)));
        for (int s = 1; s <= steps; ++s) {
            const double t = static_cast<double>(s) / steps;
            point(xs[i - 1] + t * dx, ys[i - 1] + t * dy, glyph);
        }
    }
}

void AsciiCanvas::print(std::ostream& out, const std::string& title) const {
    if (!title.empty())
        out << title << '\n';
    out << '+' << std::string(width_, '-') << "+\n";
    for (const auto& row : grid_)
        out << '|' << row << "|\n";
    out << '+' << std::string(width_, '-') << "+\n";
    out << "x: [" << format_double(x_min_, 4) << ", " << format_double(x_max_, 4)
        << "]  y: [" << format_double(y_min_, 4) << ", " << format_double(y_max_, 4)
        << "]\n";
}

void ascii_plot_series(std::ostream& out, std::span<const double> xs,
                       std::span<const double> ys, const std::string& title,
                       char glyph) {
    XYSIG_EXPECTS(xs.size() == ys.size());
    XYSIG_EXPECTS(!xs.empty());
    const double x_lo = min_value(xs);
    const double x_hi = max_value(xs);
    double y_lo = min_value(ys);
    double y_hi = max_value(ys);
    // xylint: exact-compare(exactly-flat series degenerate-window guard)
    if (y_hi == y_lo) { // flat series: open a window around the value
        y_lo -= 1.0;
        y_hi += 1.0;
    }
    // xylint: exact-compare(exactly-degenerate x range guard)
    AsciiCanvas canvas(x_lo, x_hi == x_lo ? x_lo + 1.0 : x_hi, y_lo, y_hi);
    canvas.polyline(xs, ys, glyph);
    canvas.print(out, title);
}

} // namespace xysig
