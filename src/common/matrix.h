#ifndef XYSIG_COMMON_MATRIX_H
#define XYSIG_COMMON_MATRIX_H

/// \file matrix.h
/// Dense row-major matrix and LU solver used by the MNA engine.
///
/// The matrices arising from the circuits in this project are small (tens of
/// unknowns), so a dense LU with partial pivoting is both simpler and faster
/// than a sparse solver at this scale. The template parameter supports both
/// double (DC/transient) and std::complex<double> (AC analysis).

#include <complex>
#include <cstddef>
#include <vector>

#include "common/contracts.h"
#include "common/error.h"

namespace xysig {

/// Dense row-major matrix over T (double or std::complex<double>).
template <typename T>
class Matrix {
public:
    Matrix() = default;

    Matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
        XYSIG_EXPECTS(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
        XYSIG_EXPECTS(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    /// Sets every element to value (used to reuse an MNA matrix between
    /// Newton iterations without reallocating).
    void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

    /// Matrix-vector product. x.size() must equal cols().
    [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
        XYSIG_EXPECTS(x.size() == cols_);
        std::vector<T> y(rows_, T{});
        for (std::size_t r = 0; r < rows_; ++r) {
            T acc{};
            const T* row = &data_[r * cols_];
            for (std::size_t c = 0; c < cols_; ++c)
                acc += row[c] * x[c];
            y[r] = acc;
        }
        return y;
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

namespace detail {
inline double lu_abs(double v) noexcept { return v < 0 ? -v : v; }
inline double lu_abs(const std::complex<double>& v) noexcept { return std::abs(v); }
} // namespace detail

/// LU decomposition with partial pivoting (Doolittle, in-place).
///
/// Factorises a square matrix once, then solves any number of right-hand
/// sides — the access pattern of a Newton-Raphson loop where the Jacobian is
/// refactorised every iteration but transient analysis with a fixed step can
/// reuse the factors for the linear part.
template <typename T>
class LuSolver {
public:
    /// Factorises a. Throws NumericError if the matrix is singular to working
    /// precision (pivot magnitude below pivot_tol).
    explicit LuSolver(Matrix<T> a, double pivot_tol = 1e-13)
        : lu_(std::move(a)), perm_(lu_.rows()) {
        XYSIG_EXPECTS(lu_.rows() == lu_.cols());
        const std::size_t n = lu_.rows();
        for (std::size_t i = 0; i < n; ++i)
            perm_[i] = i;

        for (std::size_t k = 0; k < n; ++k) {
            // Partial pivoting: pick the largest magnitude in column k.
            std::size_t pivot_row = k;
            double best = detail::lu_abs(lu_(k, k));
            for (std::size_t r = k + 1; r < n; ++r) {
                const double mag = detail::lu_abs(lu_(r, k));
                if (mag > best) {
                    best = mag;
                    pivot_row = r;
                }
            }
            if (best < pivot_tol)
                throw NumericError("LuSolver: singular matrix (pivot " +
                                   std::to_string(best) + " at column " +
                                   std::to_string(k) + ")");
            if (pivot_row != k) {
                for (std::size_t c = 0; c < n; ++c)
                    std::swap(lu_(k, c), lu_(pivot_row, c));
                std::swap(perm_[k], perm_[pivot_row]);
            }
            const T pivot = lu_(k, k);
            for (std::size_t r = k + 1; r < n; ++r) {
                const T factor = lu_(r, k) / pivot;
                lu_(r, k) = factor;
                for (std::size_t c = k + 1; c < n; ++c)
                    lu_(r, c) -= factor * lu_(k, c);
            }
        }
    }

    /// Solves A x = b for the factorised A. b.size() must equal n.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
        const std::size_t n = lu_.rows();
        XYSIG_EXPECTS(b.size() == n);
        std::vector<T> x(n);
        // Apply permutation, then forward substitution (unit lower factor).
        for (std::size_t i = 0; i < n; ++i) {
            T acc = b[perm_[i]];
            for (std::size_t j = 0; j < i; ++j)
                acc -= lu_(i, j) * x[j];
            x[i] = acc;
        }
        // Back substitution.
        for (std::size_t ii = n; ii-- > 0;) {
            T acc = x[ii];
            for (std::size_t j = ii + 1; j < n; ++j)
                acc -= lu_(ii, j) * x[j];
            x[ii] = acc / lu_(ii, ii);
        }
        return x;
    }

private:
    Matrix<T> lu_;
    std::vector<std::size_t> perm_;
};

/// Convenience one-shot solve of A x = b.
template <typename T>
[[nodiscard]] std::vector<T> solve_linear_system(Matrix<T> a, const std::vector<T>& b) {
    return LuSolver<T>(std::move(a)).solve(b);
}

/// Solves the normal equations for least squares: min ||A x - b||_2.
/// Small, dense problems only (used by the regression estimator).
[[nodiscard]] inline std::vector<double> solve_least_squares(const Matrix<double>& a,
                                                             const std::vector<double>& b,
                                                             double ridge = 0.0) {
    XYSIG_EXPECTS(b.size() == a.rows());
    XYSIG_EXPECTS(ridge >= 0.0);
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix<double> ata(n, n);
    std::vector<double> atb(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < m; ++k)
                acc += a(k, i) * a(k, j);
            ata(i, j) = acc;
        }
        ata(i, i) += ridge;
        double acc = 0.0;
        for (std::size_t k = 0; k < m; ++k)
            acc += a(k, i) * b[k];
        atb[i] = acc;
    }
    return solve_linear_system(std::move(ata), atb);
}

} // namespace xysig

#endif // XYSIG_COMMON_MATRIX_H
