#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"

namespace xysig {

double mean(std::span<const double> xs) {
    XYSIG_EXPECTS(!xs.empty());
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    XYSIG_EXPECTS(xs.size() >= 2);
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
    XYSIG_EXPECTS(!xs.empty());
    XYSIG_EXPECTS(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_value(std::span<const double> xs) {
    XYSIG_EXPECTS(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
    XYSIG_EXPECTS(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
    XYSIG_EXPECTS(xs.size() == ys.size());
    XYSIG_EXPECTS(xs.size() >= 2);
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    // A constant series has no direction to correlate against: the
    // coefficient is undefined, not a contract violation. Sweep drivers hit
    // this routinely (e.g. an all-zero NDF column), so return quiet NaN and
    // let the caller decide instead of aborting the whole run.
    if (sxx <= 0.0 || syy <= 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return sxy / std::sqrt(sxx * syy);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
    XYSIG_EXPECTS(xs.size() == ys.size());
    XYSIG_EXPECTS(xs.size() >= 2);
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    LineFit fit;
    if (sxx <= 0.0) {
        // All x equal: the regression of y on x is underdetermined. The
        // minimiser we return is the horizontal line through the mean —
        // defined, finite, and it keeps whole sweeps alive when one grid
        // column degenerates. It explains none of the y variance (r^2 = 0)
        // unless y is constant too, in which case the fit is exact.
        fit.slope = 0.0;
        fit.intercept = my;
        // xylint: exact-compare(exactly-constant column degenerate case)
        fit.r_squared = (syy == 0.0) ? 1.0 : 0.0;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    // xylint: exact-compare(exactly-constant column degenerate case)
    fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    XYSIG_EXPECTS(n_ >= 2);
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
    XYSIG_EXPECTS(n_ >= 1);
    return min_;
}

double RunningStats::max() const {
    XYSIG_EXPECTS(n_ >= 1);
    return max_;
}

} // namespace xysig
