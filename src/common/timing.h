#ifndef XYSIG_COMMON_TIMING_H
#define XYSIG_COMMON_TIMING_H

/// \file timing.h
/// Wall-clock stopwatch shared by the bench drivers' scaling reports.

#include <chrono>
#include <functional>

namespace xysig {

/// Seconds of wall-clock time (steady clock) taken by one call of fn.
inline double seconds_of(const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace xysig

#endif // XYSIG_COMMON_TIMING_H
