#include "common/error.h"

#include <sstream>

namespace xysig::detail {

void throw_contract_violation(const char* kind, const char* expr,
                              const char* file, int line) {
    std::ostringstream os;
    os << kind << " violation: (" << expr << ") at " << file << ':' << line;
    throw ContractError(os.str());
}

} // namespace xysig::detail
