#include "common/rng.h"

#include "common/contracts.h"

namespace xysig {

double Rng::uniform(double lo, double hi) {
    XYSIG_EXPECTS(lo <= hi);
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

double Rng::normal(double mu, double sigma) {
    XYSIG_EXPECTS(sigma >= 0.0);
    // xylint: exact-compare(sigma=0 is the exact no-noise switch; a zero-sigma draw would still perturb the engine state)
    if (sigma == 0.0)
        return mu;
    std::normal_distribution<double> dist(mu, sigma);
    return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    XYSIG_EXPECTS(lo <= hi);
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
}

bool Rng::bernoulli(double p) {
    XYSIG_EXPECTS(p >= 0.0 && p <= 1.0);
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

Rng Rng::fork() {
    // SplitMix-style scramble of a fresh draw keeps child streams decorrelated
    // from the parent and from each other.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return Rng(z);
}

} // namespace xysig
