#ifndef XYSIG_LAYOUT_COMMON_CENTROID_H
#define XYSIG_LAYOUT_COMMON_CENTROID_H

/// \file common_centroid.h
/// Two-dimensional common-centroid placement of split transistors (paper
/// Fig. 3 / ref [17]): each monitor device is split into equal units placed
/// so that every device's unit centroid coincides with the array centre,
/// cancelling linear process gradients.

#include <cstddef>
#include <vector>

namespace xysig::layout {

/// A rows x cols array of unit transistors; cells hold the device index
/// (0-based) or -1 for a dummy cell.
class Placement {
public:
    Placement(std::size_t rows, std::size_t cols);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] int device_at(std::size_t r, std::size_t c) const;
    void set_device(std::size_t r, std::size_t c, int device);

    /// Number of cells assigned to a device.
    [[nodiscard]] std::size_t unit_count(int device) const;

    /// Distance between a device's unit centroid and the array centre, in
    /// cell pitches. Exactly 0 for a common-centroid placement.
    [[nodiscard]] double centroid_error(int device) const;

    /// True when every placed device has centroid_error below tol.
    [[nodiscard]] bool is_common_centroid(double tol = 1e-9) const;

    /// Dispersion metric: mean RMS distance of a device's units from the
    /// array centre (lower = tighter interdigitation), averaged over devices.
    [[nodiscard]] double dispersion() const;

    /// Device indices present (excluding dummies).
    [[nodiscard]] std::vector<int> devices() const;

private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<int> cells_;
};

/// Places n_devices, each split into units_per_device units, on a grid with
/// the given number of rows (columns are derived). Units are assigned in
/// centrally-symmetric pairs, which guarantees the common-centroid property
/// by construction. Requires units_per_device even and the grid to have an
/// even number of cells at least n_devices * units_per_device; spare cells
/// become symmetric dummies.
[[nodiscard]] Placement common_centroid_place(int n_devices, int units_per_device,
                                              std::size_t rows);

} // namespace xysig::layout

#endif // XYSIG_LAYOUT_COMMON_CENTROID_H
