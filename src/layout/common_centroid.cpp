#include "layout/common_centroid.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.h"

namespace xysig::layout {

Placement::Placement(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, -1) {
    XYSIG_EXPECTS(rows >= 1 && cols >= 1);
}

int Placement::device_at(std::size_t r, std::size_t c) const {
    XYSIG_EXPECTS(r < rows_ && c < cols_);
    return cells_[r * cols_ + c];
}

void Placement::set_device(std::size_t r, std::size_t c, int device) {
    XYSIG_EXPECTS(r < rows_ && c < cols_);
    XYSIG_EXPECTS(device >= -1);
    cells_[r * cols_ + c] = device;
}

std::size_t Placement::unit_count(int device) const {
    return static_cast<std::size_t>(
        std::count(cells_.begin(), cells_.end(), device));
}

double Placement::centroid_error(int device) const {
    double sum_r = 0.0, sum_c = 0.0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            if (cells_[r * cols_ + c] == device) {
                sum_r += static_cast<double>(r);
                sum_c += static_cast<double>(c);
                ++n;
            }
        }
    }
    XYSIG_EXPECTS(n > 0);
    const double centre_r = (static_cast<double>(rows_) - 1.0) / 2.0;
    const double centre_c = (static_cast<double>(cols_) - 1.0) / 2.0;
    const double dr = sum_r / static_cast<double>(n) - centre_r;
    const double dc = sum_c / static_cast<double>(n) - centre_c;
    return std::sqrt(dr * dr + dc * dc);
}

bool Placement::is_common_centroid(double tol) const {
    for (const int d : devices())
        if (centroid_error(d) > tol)
            return false;
    return true;
}

double Placement::dispersion() const {
    const double centre_r = (static_cast<double>(rows_) - 1.0) / 2.0;
    const double centre_c = (static_cast<double>(cols_) - 1.0) / 2.0;
    double total = 0.0;
    const auto devs = devices();
    XYSIG_EXPECTS(!devs.empty());
    for (const int d : devs) {
        double acc = 0.0;
        std::size_t n = 0;
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                if (cells_[r * cols_ + c] == d) {
                    const double dr = static_cast<double>(r) - centre_r;
                    const double dc = static_cast<double>(c) - centre_c;
                    acc += dr * dr + dc * dc;
                    ++n;
                }
            }
        }
        total += std::sqrt(acc / static_cast<double>(n));
    }
    return total / static_cast<double>(devs.size());
}

std::vector<int> Placement::devices() const {
    std::set<int> found;
    for (const int c : cells_)
        if (c >= 0)
            found.insert(c);
    return {found.begin(), found.end()};
}

Placement common_centroid_place(int n_devices, int units_per_device,
                                std::size_t rows) {
    XYSIG_EXPECTS(n_devices >= 1);
    XYSIG_EXPECTS(units_per_device >= 2 && units_per_device % 2 == 0);
    XYSIG_EXPECTS(rows >= 1);

    const std::size_t total_units =
        static_cast<std::size_t>(n_devices) * static_cast<std::size_t>(units_per_device);
    std::size_t cols = (total_units + rows - 1) / rows;
    if ((rows * cols) % 2 != 0)
        ++cols; // need an even number of cells for symmetric pairing
    Placement p(rows, cols);

    // Cells are paired by central symmetry: cell k with cell N-1-k. Giving a
    // device both halves of a pair keeps its centroid at the array centre.
    // Pairs are dealt round-robin so units of one device spread across the
    // array (gradient averaging) instead of clumping.
    const std::size_t n_cells = rows * cols;
    const std::size_t n_pairs = n_cells / 2;
    const std::size_t pairs_per_device =
        static_cast<std::size_t>(units_per_device) / 2;

    std::size_t pair = 0;
    for (std::size_t round = 0; round < pairs_per_device; ++round) {
        for (int d = 0; d < n_devices; ++d) {
            XYSIG_ASSERT(pair < n_pairs);
            const std::size_t a = pair;
            const std::size_t b = n_cells - 1 - pair;
            p.set_device(a / cols, a % cols, d);
            p.set_device(b / cols, b % cols, d);
            ++pair;
        }
    }
    // Remaining pairs (if any) stay as symmetric dummies (-1).
    return p;
}

} // namespace xysig::layout
