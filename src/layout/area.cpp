#include "layout/area.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace xysig::layout {

AreaReport monitor_core_area(const monitor::MonitorConfig& input_config,
                             double load_width, const DesignRules& rules, int split,
                             std::size_t rows) {
    XYSIG_EXPECTS(split >= 1);
    XYSIG_EXPECTS(load_width > 0.0);

    // Eight devices: M1..M4 inputs, M5..M8 loads, split into unit fingers.
    double max_unit_w = 0.0;
    for (const auto& leg : input_config.legs)
        max_unit_w = std::max(max_unit_w, leg.width / split);
    max_unit_w = std::max(max_unit_w, load_width / split);

    const Placement placement = common_centroid_place(8, split, rows);

    const double cell_w = max_unit_w + rules.cell_overhead_x;
    const double cell_h = input_config.device.l + rules.cell_overhead_y;

    AreaReport r;
    r.width = static_cast<double>(placement.cols()) * cell_w + 2.0 * rules.edge_margin_x;
    r.height = static_cast<double>(placement.rows()) * cell_h + 2.0 * rules.edge_margin_y;
    r.area = r.width * r.height;
    return r;
}

AreaReport monitor_total_area(const monitor::MonitorConfig& input_config,
                              double load_width, const DesignRules& rules, int split,
                              std::size_t rows) {
    AreaReport core = monitor_core_area(input_config, load_width, rules, split, rows);
    AreaReport total = core;
    total.area += rules.output_stage_area;
    // Report the footprint as the same height with the width extended by the
    // output stage (a simple but consistent floorplan assumption).
    total.width += rules.output_stage_area / core.height;
    return total;
}

} // namespace xysig::layout
