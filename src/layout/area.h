#ifndef XYSIG_LAYOUT_AREA_H
#define XYSIG_LAYOUT_AREA_H

/// \file area.h
/// Area model of the monitor layout (paper Fig. 3): the fabricated monitor
/// occupies 53.54 um^2 (11.64 um x 4.6 um) with the input/load devices
/// split by four in a common-centroid array, and 116.1 um^2 including the
/// high-gain output stage.
///
/// The model is a calibrated cell-grid estimate: unit transistors become
/// cells of (unit width + fixed overhead) x (L + fixed overhead), arranged
/// on the common-centroid grid, plus edge margins. Overheads bundle
/// contacts, diffusion extensions, poly pitch and routing; the defaults are
/// calibrated against the paper's reported dimensions (see DESIGN.md).

#include "layout/common_centroid.h"
#include "monitor/mos_boundary.h"

namespace xysig::layout {

/// Calibrated 65 nm-flavoured layout rules (meters).
struct DesignRules {
    double cell_overhead_x = 0.615e-6; ///< contacts + diffusion + spacing per cell
    double cell_overhead_y = 0.82e-6;  ///< poly extension + contact row + well space
    double edge_margin_x = 0.36e-6;    ///< guard/ring margin left+right (each)
    double edge_margin_y = 0.30e-6;    ///< guard/ring margin top+bottom (each)
    double output_stage_area = 62.56e-12; ///< high-gain stage (paper: total-core)
};

/// One rectangular block estimate.
struct AreaReport {
    double width = 0.0;  ///< m
    double height = 0.0; ///< m
    double area = 0.0;   ///< m^2

    [[nodiscard]] double area_um2() const noexcept { return area * 1e12; }
    [[nodiscard]] double width_um() const noexcept { return width * 1e6; }
    [[nodiscard]] double height_um() const noexcept { return height * 1e6; }
};

/// Area of the comparator core: the four input devices plus the four load
/// devices of the Fig. 2 monitor, each split into `split` units on a
/// common-centroid grid with `rows` rows.
///
/// \param input_config the monitor's input devices (widths from Table I)
/// \param load_width   W of the pMOS loads (M5..M8)
[[nodiscard]] AreaReport monitor_core_area(const monitor::MonitorConfig& input_config,
                                           double load_width,
                                           const DesignRules& rules = {},
                                           int split = 4, std::size_t rows = 4);

/// Core + output stage.
[[nodiscard]] AreaReport monitor_total_area(const monitor::MonitorConfig& input_config,
                                            double load_width,
                                            const DesignRules& rules = {},
                                            int split = 4, std::size_t rows = 4);

} // namespace xysig::layout

#endif // XYSIG_LAYOUT_AREA_H
