// xylint self-test corpus — E2 known-good.
//
// The same conversions made explicit: every width change is visible and
// greppable at the site.
#include <cstddef>

int truncate_gain(double gain) {
    return static_cast<int>(gain);
}

int shorten_index(std::size_t index) {
    return static_cast<int>(index);
}

double widen(int ticks) {
    return static_cast<double>(ticks); // widening, still spelled out
}
