// xylint self-test corpus — E1 known-good.
//
// The two sanctioned shapes: tolerance comparison for approximate
// quantities, and an annotated exact comparison where exactness is the
// point (sentinel values, bit-identity gates).
#include <cmath>

bool close(double a, double b, double tol) {
    return std::fabs(a - b) <= tol; // ordering, not equality: fine
}

bool is_unset(double v) {
    // xylint: exact-compare(0.0 is the explicit "unset" sentinel, assigned verbatim)
    return v == 0.0;
}
