// xylint self-test corpus — A1 known-bad (annotation hygiene).
//
// Escape hatches must not rot into blanket waivers: an empty
// justification and an unknown tag are both findings in their own
// right, even though the code below them is otherwise unremarkable.
int plain(int v) {
    // xylint: exact-compare()
    int doubled = v * 2;
    // xylint: frobnicate(mystery waiver)
    return doubled;
}
