// xylint self-test corpus — E1 known-bad.
//
// Raw floating-point ==/!= with no statement of intent: whether this is
// a rounding bug or a deliberate exact gate is invisible at the call
// site, so xylint demands the annotation either way.
bool same_gain(double a, double b) {
    return a == b; // E1: unannotated float equality
}

bool changed(float before, float after) {
    return before != after; // E1: unannotated float inequality
}
