// xylint self-test corpus — T1 known-good.
//
// The sanctioned shape: every spawned thread is joined before the scope
// that owns it returns, so all side effects are ordered before the
// owner's results.
#include <thread>

void run_and_join() {
    std::thread worker([] { /* background work */ });
    worker.join();
}
