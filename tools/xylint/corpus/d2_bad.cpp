// xylint self-test corpus — D2 known-bad.
//
// Wall-clock, environment, and hardware entropy reads inside what claims
// to be deterministic library code: three distinct D2 shapes, each of
// which makes two runs of the same job diverge.
#include <chrono>
#include <cstdlib>
#include <random>

double jittered_gain() {
    const auto t = std::chrono::steady_clock::now(); // D2: wall clock
    return static_cast<double>(t.time_since_epoch().count() % 7);
}

int env_tuned_order() {
    const char* raw = std::getenv("XYSIG_ORDER"); // D2: environment read
    return raw == nullptr ? 0 : 1;
}

unsigned hardware_seed() {
    std::random_device rd; // D2: nondeterministic entropy source
    return rd();
}
