// xylint self-test corpus — D1 known-good.
//
// Two sanctioned shapes: (1) serialise through an explicitly sorted
// view, so the emitted bytes cannot depend on hash order; (2) a
// genuinely order-free reduction carrying the annotation escape hatch
// with a justification.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

std::string serialise_sorted(const std::unordered_map<std::string, int>& m) {
    std::vector<std::pair<std::string, int>> items(m.begin(), m.end());
    std::sort(items.begin(), items.end());
    std::string out;
    for (const auto& [key, value] : items) { // ordered: vector, not the map
        out += key;
        out += '=';
        out += std::to_string(value);
        out += ';';
    }
    return out;
}

int total(const std::unordered_map<std::string, int>& m) {
    int sum = 0;
    // xylint: order-insensitive(commutative integer sum; no output ordering)
    for (const auto& [key, value] : m)
        sum += value;
    return sum;
}
