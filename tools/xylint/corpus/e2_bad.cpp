// xylint self-test corpus — E2 known-bad.
//
// Implicit narrowing in signature-critical code: a double silently
// truncated to int and a 64-bit size silently shortened — both change
// values without any marker in the source.
#include <cstddef>

int truncate_gain(double gain) {
    return gain; // E2: double -> int, implicit
}

int shorten_index(std::size_t index) {
    return index; // E2: 64-bit -> 32-bit, implicit
}
