// xylint self-test corpus — T1 known-bad.
//
// A detached thread outlives every bit-identity gate: its work can land
// after results are emitted (or never), and nothing joins it before the
// process exits.
#include <thread>

void fire_and_forget() {
    std::thread worker([] { /* background work */ });
    worker.detach(); // T1: fire-and-forget thread
}
