// xylint self-test corpus — D2 known-good.
//
// Deterministic equivalents: timing passed in by the caller (the
// transport layer owns the clock), seeds explicit, and one justified
// telemetry site using the annotation escape hatch.
#include <chrono>
#include <cstdint>

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
    // Clock *values* are data; only reading ::now() here would be D2.
    return std::chrono::duration<double>(b - a).count();
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
    return seed * 6364136223846793005ULL + (stream | 1ULL);
}

double telemetry_stamp() {
    // xylint: nondeterminism-ok(progress telemetry only; never feeds results)
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
