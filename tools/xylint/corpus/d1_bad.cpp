// xylint self-test corpus — D1 known-bad.
//
// Hash-order iteration feeding an output string: the serialised result
// depends on std::unordered_map's bucket order, which is unspecified and
// differs across standard libraries and allocation histories. This is
// exactly the construction that breaks wire/fingerprint bit-identity,
// and xylint must flag it.
#include <string>
#include <unordered_map>

std::string serialise(const std::unordered_map<std::string, int>& m) {
    std::string out;
    for (const auto& [key, value] : m) { // D1: order reaches the output
        out += key;
        out += '=';
        out += std::to_string(value);
        out += ';';
    }
    return out;
}
