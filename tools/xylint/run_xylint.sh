#!/usr/bin/env sh
# ctest/CI entry point for tools/xylint/xylint.py.
#
# The auditor needs python3 with the libclang bindings (clang.cindex) and
# a loadable libclang. Where either is missing this exits 77 — the ctest
# SKIP return code, exactly like scripts/check_thread_safety_lint.sh —
# so developer machines without clang skip cleanly while the CI xylint
# lane (which installs python3-clang) runs it blocking.
#
# Usage:
#   tools/xylint/run_xylint.sh -p BUILD_DIR    lint the tree
#   tools/xylint/run_xylint.sh --self-test     known-bad/known-good corpus
# Extra arguments are passed through to xylint.py.
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)
python="${XYLINT_PYTHON:-python3}"

if ! command -v "$python" >/dev/null 2>&1; then
    echo "run_xylint: no python3 found — skipping" >&2
    exit 77
fi
if ! "$python" -c 'import clang.cindex' >/dev/null 2>&1; then
    echo "run_xylint: python clang bindings (clang.cindex) not found — skipping" >&2
    exit 77
fi

# xylint.py itself exits 77 when the bindings import but libclang cannot
# be loaded, so every unavailability path reports SKIP, never FAIL.
exec "$python" "$root/tools/xylint/xylint.py" "$@"
