#!/usr/bin/env python3
"""xylint — AST-level determinism & numeric-exactness auditor.

The whole repo is built around *bit-identity*: the same CUT must produce
the same digital signature on every run, every thread count, every
machine. This tool makes the constructions that silently break that —
hash-order iteration, wall-clock/randomness in deterministic code, inexact
float comparison, narrowing conversions, fire-and-forget threads — lint
errors over the real AST (libclang via clang.cindex, driven by the
build's compile_commands.json) instead of bench-time flakes.

Checks
------
  D1  range-for over std::unordered_map/set/multimap/multiset in src/.
      Hash iteration order is unspecified and varies across libstdc++/
      libc++ and across runs with different allocation histories; any
      loop feeding fingerprints, wire output, or result emission must
      iterate a sorted view. Escape hatch for genuinely order-free loops:
          // xylint: order-insensitive(<why>)
  D2  wall-clock (`steady_clock`/`system_clock`/`high_resolution_clock`
      ::now), `std::random_device`, `getenv` and C time functions in
      deterministic library code. Timing/transport telemetry files are
      allowlisted below (each with a justification); a single site can
      carry
          // xylint: nondeterminism-ok(<why>)
  E1  raw ==/!= between floating-point operands. Exact comparison is
      sanctioned only where exactness is the *point* (sentinels,
      bit-identity gates) and must say so:
          // xylint: exact-compare(<why>)
  E2  implicit float/integer narrowing conversions in the
      signature-critical src/kernels + src/core paths (clang's
      -Wconversion family surfaced through the same libclang parse).
      Fix with explicit casts/typed indices, or justify:
          // xylint: narrowing-ok(<why>)
  T1  std::thread::detach() — a detached thread outlives every
      bit-identity gate and its work can land in no result. Join it (or
      use common/parallel's pool). Escape hatch:
          // xylint: detach-ok(<why>)
  A1  meta: every `// xylint: tag(why)` annotation must use a known tag
      and carry a non-empty justification; a malformed or empty one is
      itself a finding, so the escape hatches cannot rot into blanket
      waivers.

Annotations apply to findings on the same line or on the line directly
above. Exit codes: 0 clean, 1 findings, 2 tool error, 77 libclang
unavailable (mirrors scripts/check_thread_safety_lint.sh skipping).

Usage:
  xylint.py -p BUILD_DIR [--root REPO_ROOT]   lint the tree
  xylint.py --self-test                       run the known-bad/known-good corpus
  xylint.py --list-checks                     print the check table
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

# walk() recurses over clang ASTs; deeply chained expressions (long
# operator<< or string-concat chains) can exceed CPython's default 1000.
sys.setrecursionlimit(20000)

SKIP_EXIT = 77

# --------------------------------------------------------------------------
# Policy tables
# --------------------------------------------------------------------------

# Annotation tag -> rule it waives.
ANNOTATION_TAGS = {
    "order-insensitive": "D1",
    "nondeterminism-ok": "D2",
    "exact-compare": "E1",
    "narrowing-ok": "E2",
    "detach-ok": "T1",
}

# D2 file allowlist: repo-relative path -> justification. These are the
# timing/transport layers — wall-clock here feeds telemetry (shard
# timings, heartbeats, backoff, queue-wait seconds), never member values,
# signatures, or orderings. Every entry must carry a why; an empty string
# is rejected at startup.
D2_FILE_ALLOWLIST = {
    "src/common/timing.h": "bench/example wall-clock helper; results never depend on it",
    "src/server/chaos.cpp": "fallback chaos seed when the plan gives none; injected faults stay seed-deterministic",
    "src/server/fanout.cpp": "heartbeat scheduling, inactivity timeouts and per-partition telemetry",
    "src/server/scheduler.cpp": "queue-wait telemetry (queue_seconds) on emitted events",
    "src/server/sweep_service.cpp": "per-shard/per-job wall-clock telemetry on progress events",
    "src/server/tcp_transport.cpp": "connect backoff deadlines and heartbeat pacing",
}

# Clock classes whose ::now() is nondeterministic input.
WALL_CLOCKS = {"steady_clock", "system_clock", "high_resolution_clock"}

# Free C functions that read wall-clock or environment. Matched only as
# free functions (not members), so e.g. TransientResult::time() is fine.
NONDET_FREE_FUNCTIONS = {
    "getenv",
    "secure_getenv",
    "time",
    "clock",
    "clock_gettime",
    "gettimeofday",
    "timespec_get",
}

# Diagnostic options that constitute an E2 (narrowing) finding. clang
# spells members of -Wconversion differently per cause; match by prefix.
E2_OPTION_PREFIXES = (
    "-Wconversion",
    "-Wsign-conversion",
    "-Wfloat-conversion",
    "-Wshorten-64-to-32",
    "-Wimplicit-int-conversion",
    "-Wimplicit-float-conversion",
    "-Wimplicit-int-float-conversion",
    "-Wimplicit-const-int-float-conversion",
)

# Extra parse args that surface E2 through TU diagnostics.
E2_PARSE_ARGS = ["-Wconversion", "-Wsign-conversion"]

CHECK_TABLE = [
    ("D1", "range-for over unordered containers", "// xylint: order-insensitive(<why>)"),
    ("D2", "wall-clock / random_device / getenv in library code", "file allowlist or // xylint: nondeterminism-ok(<why>)"),
    ("E1", "raw ==/!= between floating-point operands", "// xylint: exact-compare(<why>)"),
    ("E2", "implicit narrowing in src/kernels + src/core", "explicit cast or // xylint: narrowing-ok(<why>)"),
    ("T1", "std::thread::detach()", "join it, or // xylint: detach-ok(<why>)"),
    ("A1", "malformed/unjustified xylint annotation", "use a known tag with a non-empty why"),
]

ANNOTATION_RE = re.compile(r"//\s*xylint:\s*([A-Za-z0-9_-]+)\s*\(([^)]*)\)")
ANNOTATION_MARK_RE = re.compile(r"//\s*xylint:")


class Finding:
    __slots__ = ("rule", "path", "line", "col", "message")

    def __init__(self, rule, path, line, col, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}:{self.col}: {self.rule}: {self.message}"


def fail_tool(msg):
    print(f"xylint: error: {msg}", file=sys.stderr)
    sys.exit(2)


# --------------------------------------------------------------------------
# libclang loading (graceful skip when absent)
# --------------------------------------------------------------------------

def load_cindex():
    """Import clang.cindex and make sure libclang actually loads.

    Returns the cindex module, or exits 77 with a skip message — the
    ctest entries mirror check_thread_safety_lint.sh (SKIP_RETURN_CODE).
    """
    try:
        from clang import cindex
    except ImportError:
        print("xylint: python clang bindings (clang.cindex) not found — skipping",
              file=sys.stderr)
        sys.exit(SKIP_EXIT)

    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass

    # Bindings installed but libclang.so not on the default search path:
    # try the usual Debian/Ubuntu locations before giving up.
    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
        + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/x86_64-linux-gnu/libclang-*.so*"),
        reverse=True,
    )
    for lib in candidates:
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    print("xylint: clang.cindex present but no loadable libclang — skipping",
          file=sys.stderr)
    sys.exit(SKIP_EXIT)


def clang_resource_args():
    """-resource-dir for libclang's builtin headers, when clang is around.

    libclang normally locates its own builtins relative to the library;
    this is a belt-and-braces for installs where only the python binding
    knows the library path.
    """
    clang = shutil.which("clang")
    if not clang:
        return []
    try:
        out = subprocess.run([clang, "-print-resource-dir"], check=True,
                             capture_output=True, text=True).stdout.strip()
        return ["-resource-dir", out] if out else []
    except (OSError, subprocess.CalledProcessError):
        return []


# --------------------------------------------------------------------------
# Source / annotation cache
# --------------------------------------------------------------------------

class SourceCache:
    """Per-file line cache + parsed xylint annotations."""

    def __init__(self):
        self._lines = {}
        self._annotations = {}

    def lines(self, path):
        path = os.path.realpath(path)
        if path not in self._lines:
            try:
                with open(path, "r", encoding="utf-8", errors="replace") as fh:
                    self._lines[path] = fh.read().splitlines()
            except OSError:
                self._lines[path] = []
        return self._lines[path]

    def annotations(self, path):
        """{line_number: set(rule)} of well-formed annotations in `path`."""
        path = os.path.realpath(path)
        if path not in self._annotations:
            per_line = {}
            for i, text in enumerate(self.lines(path), start=1):
                for tag, why in ANNOTATION_RE.findall(text):
                    rule = ANNOTATION_TAGS.get(tag)
                    if rule and why.strip():
                        per_line.setdefault(i, set()).add(rule)
            self._annotations[path] = per_line
        return self._annotations[path]

    def annotation_errors(self, path):
        """A1 findings: unknown tags, empty whys, or unparseable markers."""
        out = []
        for i, text in enumerate(self.lines(path), start=1):
            matches = ANNOTATION_RE.findall(text)
            if ANNOTATION_MARK_RE.search(text) and not matches:
                out.append(Finding("A1", path, i, 1,
                                   "unparseable xylint annotation — use "
                                   "// xylint: <tag>(<why>)"))
                continue
            for tag, why in matches:
                if tag not in ANNOTATION_TAGS:
                    known = ", ".join(sorted(ANNOTATION_TAGS))
                    out.append(Finding("A1", path, i, 1,
                                       f"unknown xylint tag '{tag}' (known: {known})"))
                elif not why.strip():
                    out.append(Finding("A1", path, i, 1,
                                       f"xylint annotation '{tag}' has no justification "
                                       "— say why the waiver is sound"))
        return out

    def waived(self, finding):
        ann = self.annotations(finding.path)
        for line in (finding.line, finding.line - 1):
            if finding.rule in ann.get(line, set()):
                return True
        return False


# --------------------------------------------------------------------------
# AST checks
# --------------------------------------------------------------------------

class AstContext:
    def __init__(self, cindex, root, cache, scan_pred):
        self.cindex = cindex
        self.root = root
        self.cache = cache
        # scan_pred(path) -> bool: is this file inside the audited tree?
        self.scan_pred = scan_pred
        self.findings = []

    def add(self, rule, location, message):
        if location.file is None:
            return
        path = os.path.realpath(location.file.name)
        if not self.scan_pred(path):
            return
        self.findings.append(Finding(rule, path, location.line,
                                     location.column, message))


def type_is_unordered(ctx, ctype):
    t = ctype.get_canonical()
    kinds = ctx.cindex.TypeKind
    if t.kind in (kinds.LVALUEREFERENCE, kinds.RVALUEREFERENCE):
        t = t.get_pointee().get_canonical()
    spelling = t.spelling
    if spelling.startswith("const "):
        spelling = spelling[len("const "):]
    return spelling.startswith("std::unordered_")


def type_is_floating(ctx, ctype):
    kinds = ctx.cindex.TypeKind
    return ctype.get_canonical().kind in (
        kinds.FLOAT, kinds.DOUBLE, kinds.LONGDOUBLE, kinds.FLOAT128)


def binary_op_token(cursor, lhs, rhs):
    """The operator token of a BINARY_OPERATOR cursor, or None.

    libclang < 17 has no opcode accessor; the operator is the first token
    between the operands' extents. Returns (spelling, location).
    """
    lhs_end = lhs.extent.end.offset
    rhs_start = rhs.extent.start.offset
    for tok in cursor.get_tokens():
        off = tok.extent.start.offset
        if lhs_end <= off <= rhs_start and tok.spelling in ("==", "!="):
            return tok.spelling, tok.extent.start
    return None


def check_d1_range_for(ctx, cursor):
    if cursor.kind != ctx.cindex.CursorKind.CXX_FOR_RANGE_STMT:
        return
    for child in cursor.get_children():
        if not child.kind.is_expression():
            continue
        if type_is_unordered(ctx, child.type):
            ctx.add("D1", cursor.location,
                    "range-for over an unordered container — hash order is "
                    "unspecified; iterate a sorted view, or annotate "
                    "// xylint: order-insensitive(<why>) if the loop body "
                    "is genuinely order-free")
        break  # only the range initializer; the body is checked on its own


def check_d2_nondeterminism(ctx, cursor):
    kind = cursor.kind
    ck = ctx.cindex.CursorKind

    if kind == ck.DECL_REF_EXPR or kind == ck.MEMBER_REF_EXPR:
        ref = cursor.referenced
        if ref is None:
            return
        parent = ref.semantic_parent
        if ref.spelling == "now" and parent is not None and \
                parent.spelling in WALL_CLOCKS:
            ctx.add("D2", cursor.location,
                    f"wall-clock read ({parent.spelling}::now) in deterministic "
                    "library code — pass timing in, or add the file to the "
                    "timing/transport allowlist / annotate "
                    "// xylint: nondeterminism-ok(<why>)")
        elif ref.spelling in NONDET_FREE_FUNCTIONS and ref.kind == ck.FUNCTION_DECL:
            if parent is not None and parent.kind in (
                    ck.TRANSLATION_UNIT, ck.NAMESPACE) and \
                    (parent.kind == ck.TRANSLATION_UNIT or
                     parent.spelling == "std"):
                ctx.add("D2", cursor.location,
                        f"nondeterministic input ({ref.spelling}) in library "
                        "code — environment/wall-clock must not reach "
                        "deterministic paths")
    elif kind in (ck.VAR_DECL, ck.FIELD_DECL):
        if "random_device" in cursor.type.get_canonical().spelling:
            ctx.add("D2", cursor.location,
                    "std::random_device in library code — all randomness "
                    "goes through common/rng with an explicit seed")
    elif kind == ck.TYPE_REF and "random_device" in cursor.spelling:
        ctx.add("D2", cursor.location,
                "std::random_device in library code — all randomness goes "
                "through common/rng with an explicit seed")


def check_e1_float_compare(ctx, cursor):
    if cursor.kind != ctx.cindex.CursorKind.BINARY_OPERATOR:
        return
    children = list(cursor.get_children())
    if len(children) != 2:
        return
    lhs, rhs = children
    if not (type_is_floating(ctx, lhs.type) or type_is_floating(ctx, rhs.type)):
        return
    op = binary_op_token(cursor, lhs, rhs)
    if op is None:
        return
    spelling, loc = op
    ctx.add("E1", loc,
            f"raw floating-point {spelling} — if exactness is the point "
            "(sentinel, bit-identity gate), say so with "
            "// xylint: exact-compare(<why>); otherwise compare with an "
            "explicit tolerance")


def check_t1_detach(ctx, cursor):
    if cursor.kind != ctx.cindex.CursorKind.CALL_EXPR:
        return
    ref = cursor.referenced
    if ref is None or ref.spelling != "detach":
        return
    parent = ref.semantic_parent
    if parent is not None and parent.spelling in ("thread", "jthread"):
        ctx.add("T1", cursor.location,
                "std::thread::detach() — a detached thread escapes every "
                "bit-identity gate; join it (or use common/parallel)")


AST_CHECKS = [
    check_d1_range_for,
    check_d2_nondeterminism,
    check_e1_float_compare,
    check_t1_detach,
]


def walk(ctx, cursor):
    loc_file = cursor.location.file
    if loc_file is not None and not ctx.scan_pred(os.path.realpath(loc_file.name)):
        return  # prune system headers / out-of-tree subtrees entirely
    for check in AST_CHECKS:
        check(ctx, cursor)
    for child in cursor.get_children():
        walk(ctx, child)


# --------------------------------------------------------------------------
# Translation-unit driving
# --------------------------------------------------------------------------

def compile_args(entry):
    """Extract clang-digestible args from one compile_commands entry."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    args = []
    skip_next = False
    src = entry["file"]
    for a in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-c", "-MD", "-MMD", "-MP"):
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a == src or os.path.basename(a) == os.path.basename(src):
            continue
        args.append(a)
    return args


def parse_tu(cindex, index, path, args, directory):
    prev = os.getcwd()
    os.chdir(directory)
    try:
        return index.parse(path, args=args)
    finally:
        os.chdir(prev)


def severe_errors(tu):
    out = []
    for d in tu.diagnostics:
        if d.severity >= d.Error:
            out.append(str(d))
    return out


def e2_findings(ctx, tu, e2_pred):
    for d in tu.diagnostics:
        if d.severity < d.Warning or d.location.file is None:
            continue
        path = os.path.realpath(d.location.file.name)
        if not e2_pred(path):
            continue
        option = d.option or ""
        if any(option.startswith(p) for p in E2_OPTION_PREFIXES):
            ctx.findings.append(Finding(
                "E2", path, d.location.line, d.location.column,
                f"implicit narrowing in a signature-critical path "
                f"({d.spelling}) [{option}] — use an explicit cast / typed "
                "width, or annotate // xylint: narrowing-ok(<why>)"))


def apply_policy(findings, cache, root):
    """Drop annotated/allowlisted findings; keep the rest, deduped+sorted."""
    kept = {}
    for f in findings:
        rel = os.path.relpath(f.path, root)
        if f.rule == "D2" and rel in D2_FILE_ALLOWLIST:
            continue
        if f.rule in ANNOTATION_TAGS.values() and cache.waived(f):
            continue
        kept[f.key()] = f
    return sorted(kept.values(), key=Finding.key)


def lint_tree(cindex, root, build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        fail_tool(f"{db_path} not found — configure with "
                  "CMAKE_EXPORT_COMPILE_COMMANDS (the root CMakeLists does "
                  "this by default)")
    with open(db_path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)

    src_root = os.path.realpath(os.path.join(root, "src"))

    def in_src(path):
        return path.startswith(src_root + os.sep)

    def e2_scope(path):
        return path.startswith(os.path.join(src_root, "kernels") + os.sep) or \
            path.startswith(os.path.join(src_root, "core") + os.sep)

    for rel, why in D2_FILE_ALLOWLIST.items():
        if not why.strip():
            fail_tool(f"D2 allowlist entry {rel} has no justification")

    index = cindex.Index.create()
    cache = SourceCache()
    ctx = AstContext(cindex, root, cache, in_src)
    resource = clang_resource_args()

    tus = 0
    for entry in entries:
        src = os.path.realpath(os.path.join(entry.get("directory", "."),
                                            entry["file"]))
        if not in_src(src):
            continue
        args = compile_args(entry) + E2_PARSE_ARGS + resource
        tu = parse_tu(cindex, index, src, args, entry.get("directory", "."))
        errors = severe_errors(tu)
        if errors:
            fail_tool("parse errors in {} — findings would be incomplete:\n  {}"
                      .format(os.path.relpath(src, root), "\n  ".join(errors)))
        walk(ctx, tu.cursor)
        e2_findings(ctx, tu, e2_scope)
        tus += 1

    if tus == 0:
        fail_tool("no src/ translation units in compile_commands.json")

    # Annotation hygiene over every source file in src/, whether or not a
    # TU touched it this run.
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in filenames:
            if name.endswith((".cpp", ".h")):
                ctx.findings.extend(
                    cache.annotation_errors(os.path.join(dirpath, name)))

    findings = apply_policy(ctx.findings, cache, root)
    for f in findings:
        print(f.render(root))
    if findings:
        print(f"xylint: {len(findings)} finding(s) across {tus} translation "
              "unit(s)", file=sys.stderr)
        return 1
    print(f"xylint: clean ({tus} translation units)")
    return 0


# --------------------------------------------------------------------------
# Self-test corpus
# --------------------------------------------------------------------------

# file -> set of rules that MUST be found (empty set: must be clean).
SELF_TEST_CASES = [
    ("d1_bad.cpp", {"D1"}),
    ("d1_good.cpp", set()),
    ("d2_bad.cpp", {"D2"}),
    ("d2_good.cpp", set()),
    ("e1_bad.cpp", {"E1"}),
    ("e1_good.cpp", set()),
    ("e2_bad.cpp", {"E2"}),
    ("e2_good.cpp", set()),
    ("t1_bad.cpp", {"T1"}),
    ("t1_good.cpp", set()),
    ("a1_bad.cpp", {"A1"}),
]


def self_test(cindex):
    corpus = os.path.join(os.path.dirname(os.path.realpath(__file__)), "corpus")
    index = cindex.Index.create()
    resource = clang_resource_args()
    failures = 0

    for name, expected in SELF_TEST_CASES:
        path = os.path.join(corpus, name)
        if not os.path.isfile(path):
            print(f"self-test: MISSING corpus file {name}", file=sys.stderr)
            failures += 1
            continue
        cache = SourceCache()
        # Corpus scope: everything in the corpus dir counts as "library
        # code", including for E2 (no kernels/core path requirement).
        pred = lambda p: p.startswith(corpus + os.sep)  # noqa: E731
        ctx = AstContext(cindex, corpus, cache, pred)
        tu = parse_tu(cindex, index,
                      path, ["-std=c++20"] + E2_PARSE_ARGS + resource, corpus)
        errors = severe_errors(tu)
        if errors:
            print(f"self-test: corpus file {name} does not parse:\n  "
                  + "\n  ".join(errors), file=sys.stderr)
            failures += 1
            continue
        walk(ctx, tu.cursor)
        e2_findings(ctx, tu, pred)
        ctx.findings.extend(cache.annotation_errors(path))
        found = {f.rule for f in apply_policy(ctx.findings, cache, corpus)}
        if found != expected:
            label = "known-bad" if expected else "known-good"
            print(f"self-test: {label} {name}: expected rules "
                  f"{sorted(expected) or 'none'}, found {sorted(found) or 'none'}",
                  file=sys.stderr)
            for f in apply_policy(ctx.findings, cache, corpus):
                print("  " + f.render(corpus), file=sys.stderr)
            failures += 1
        else:
            print(f"self-test: {name}: ok "
                  f"({', '.join(sorted(expected)) or 'clean'})")

    if failures:
        print(f"xylint --self-test: {failures} corpus case(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"xylint --self-test: all {len(SELF_TEST_CASES)} corpus cases pass")
    return 0


# --------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build directory containing compile_commands.json")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above this file)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the known-bad/known-good corpus")
    ap.add_argument("--list-checks", action="store_true",
                    help="print the check table and exit")
    args = ap.parse_args()

    if args.list_checks:
        for rule, what, escape in CHECK_TABLE:
            print(f"{rule}  {what}\n      escape: {escape}")
        return 0

    cindex = load_cindex()
    if args.self_test:
        return self_test(cindex)

    root = os.path.realpath(
        args.root
        or os.path.join(os.path.dirname(os.path.realpath(__file__)), "..", ".."))
    build_dir = args.build_dir or os.path.join(root, "build")
    return lint_tree(cindex, root, build_dir)


if __name__ == "__main__":
    sys.exit(main())
