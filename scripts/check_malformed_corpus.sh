#!/usr/bin/env sh
# Replays every line of the malformed-line corpus through the real
# protocol validator (`sweep_server --check`) and asserts each one is
# REJECTED with a clean nonzero exit — exit code 1, not a crash signal.
# Also generates a 100k-'[' depth bomb on the fly: the parser must refuse
# it via its bounded nesting depth instead of overflowing the stack.
# Usage:
#
#   scripts/check_malformed_corpus.sh ./build/example_sweep_server \
#       [tests/server/malformed_corpus.ndjson]
set -u

server="${1:?usage: check_malformed_corpus.sh <sweep_server binary> [corpus.ndjson]}"
corpus="${2:-tests/server/malformed_corpus.ndjson}"

fail=0
checked=0
line_number=0
while IFS= read -r line || [ -n "$line" ]; do
    line_number=$((line_number + 1))
    case "$line" in '' | '#'*) continue ;; esac
    checked=$((checked + 1))
    printf '%s\n' "$line" | "$server" --check >/dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "check_malformed_corpus: line $line_number exited $rc (want 1): $line" >&2
        fail=1
    fi
done <"$corpus"

if [ "$checked" -lt 10 ]; then
    echo "check_malformed_corpus: only $checked corpus lines in $corpus — file moved?" >&2
    exit 1
fi

awk 'BEGIN { s = ""; for (i = 0; i < 100000; i++) s = s "["; print s }' |
    "$server" --check >/dev/null 2>&1
rc=$?
if [ "$rc" -ne 1 ]; then
    echo "check_malformed_corpus: 100k-bracket depth bomb exited $rc (want 1)" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "check_malformed_corpus: $checked corpus lines + depth bomb all cleanly rejected"
fi
exit "$fail"
