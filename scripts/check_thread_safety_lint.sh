#!/usr/bin/env sh
# Negative-compile check for the Clang thread-safety analysis: proves the
# annotations in src/common/annotated_mutex.h actually produce -Werror
# diagnostics, so the CI clang lane cannot pass with the analysis
# silently inert (macro set gutted, -Werror=thread-safety dropped, or a
# compiler that ignores the attributes).
#
#   good probe  — correctly locked code: MUST compile.
#   bad probes  — a GUARDED_BY write without the lock, and a REQUIRES
#                 call without the lock: each MUST fail with a
#                 thread-safety diagnostic.
#
# Usage: scripts/check_thread_safety_lint.sh [clang++]
# The compiler is $1, else $CLANGXX, else clang++ from PATH. Exits 77
# (the ctest SKIP return code) when no clang is available — GCC expands
# the annotations to nothing, so only clang can run this check.
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
clangxx="${1:-${CLANGXX:-clang++}}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
    echo "check_thread_safety_lint: no clang++ found ($clangxx) — skipping" >&2
    exit 77
fi
if ! "$clangxx" --version 2>/dev/null | grep -qi clang; then
    echo "check_thread_safety_lint: $clangxx is not clang — skipping" >&2
    exit 77
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

compile() {
    "$clangxx" -std=c++20 -fsyntax-only -Wthread-safety \
        -Werror=thread-safety -I "$root/src" "$1" 2>"$tmp/diag.txt"
}

# --- good probe: the documented conventions, correctly followed --------
cat >"$tmp/good.cpp" <<'EOF'
#include "common/annotated_mutex.h"

class Counter {
public:
    void bump() EXCLUDES(mutex_) {
        xysig::MutexLock lock(mutex_);
        bump_locked();
    }
    void wait_nonzero() EXCLUDES(mutex_) {
        xysig::MutexLock lock(mutex_);
        cv_.wait(lock, [this]() REQUIRES(mutex_) { return value_ != 0; });
    }

private:
    void bump_locked() REQUIRES(mutex_) { ++value_; }

    xysig::Mutex mutex_;
    xysig::CondVar cv_;
    int value_ GUARDED_BY(mutex_) = 0;
};
EOF
if ! compile "$tmp/good.cpp"; then
    echo "check_thread_safety_lint: GOOD probe failed to compile:" >&2
    cat "$tmp/diag.txt" >&2
    exit 1
fi

expect_thread_safety_failure() {
    # $1 = probe path, $2 = label
    if compile "$1"; then
        echo "check_thread_safety_lint: BAD probe '$2' compiled — the" \
            "thread-safety analysis is inert" >&2
        exit 1
    fi
    if ! grep -q 'thread-safety' "$tmp/diag.txt"; then
        echo "check_thread_safety_lint: BAD probe '$2' failed for the" \
            "wrong reason (not a -Wthread-safety diagnostic):" >&2
        cat "$tmp/diag.txt" >&2
        exit 1
    fi
}

# --- bad probe 1: GUARDED_BY field written without the lock ------------
cat >"$tmp/bad_guarded.cpp" <<'EOF'
#include "common/annotated_mutex.h"

class Counter {
public:
    void bump() { ++value_; } // no lock: must not compile

private:
    xysig::Mutex mutex_;
    int value_ GUARDED_BY(mutex_) = 0;
};
EOF
expect_thread_safety_failure "$tmp/bad_guarded.cpp" "unlocked GUARDED_BY write"

# --- bad probe 2: REQUIRES helper called without the lock --------------
cat >"$tmp/bad_requires.cpp" <<'EOF'
#include "common/annotated_mutex.h"

class Counter {
public:
    void bump() { bump_locked(); } // no lock: must not compile

private:
    void bump_locked() REQUIRES(mutex_) { ++value_; }

    xysig::Mutex mutex_;
    int value_ GUARDED_BY(mutex_) = 0;
};
EOF
expect_thread_safety_failure "$tmp/bad_requires.cpp" "REQUIRES call without lock"

echo "check_thread_safety_lint: analysis live ($clangxx):" \
    "good probe compiles, both bad probes rejected"
