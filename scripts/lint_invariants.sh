#!/usr/bin/env sh
# Project invariant linter — greps the tree for constructions the
# architecture forbids and fails loudly on any hit. Run by CI as a
# blocking step and registered in ctest (`lint_invariants`). Usage:
#
#   scripts/lint_invariants.sh [repo-root]     # lint a tree (default: repo)
#   scripts/lint_invariants.sh --self-test     # prove each rule still fires
#
# Rules (each one backs a contract in docs/ARCHITECTURE.md):
#
#   R1  no raw std synchronisation primitives outside
#       src/common/annotated_mutex.h — every mutex/condvar goes through
#       the Clang-thread-safety-annotated wrappers, or the CI clang
#       lane's -Werror=thread-safety analysis silently loses coverage.
#       (std::once_flag/std::call_once are allowed: they carry no
#       locking discipline to annotate.)
#
#   R2  no rand()/srand() — all randomness goes through common/rng so
#       seeded runs stay reproducible bit-for-bit.
#
#   R3  no silently-swallowed exceptions: a catch body must contain code
#       or at least a comment saying why dropping the exception is
#       correct. A bare `catch (...) {}` hides real failures.
#
#   R4  every bench/bench_*.cpp that exercises a parallel, sharded, or
#       fanned-out path must carry a bit-identity gate (the string
#       "bit-identical"/"bit_identical" marking the check that compares
#       against the serial reference). Purely serial figure
#       reproductions are allowlisted below.
#
#   R5  no std::cout/std::cerr in src/ library code. The server speaks
#       NDJSON on stdout and machine-parsed diagnostics on stderr; a
#       stray stream insert from the library interleaves with (and
#       corrupts) both. Tools, benches, examples and tests own their
#       streams and are exempt.
set -u

self_test=0
root=""
for arg in "$@"; do
    case "$arg" in
    --self-test) self_test=1 ;;
    *) root="$arg" ;;
    esac
done
if [ -z "$root" ]; then
    root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
fi

# Benches with no parallel/sharded path: straight serial figure and
# ablation reproductions, nothing to compare against a serial reference.
BIT_IDENTITY_ALLOWLIST="bench_ablation_capture.cpp
bench_ablation_linear_vs_nonlinear.cpp
bench_fig1_lissajous.cpp
bench_fig3_layout_area.cpp
bench_fig6_zone_map.cpp
bench_fig7_chronogram.cpp
bench_fig8_ndf_sweep.cpp"

failures=0

fail() {
    echo "lint_invariants: $1" >&2
    failures=$((failures + 1))
}

# Every C++ source/header under the lintable trees (NUL-safe enough for
# this repo: no spaces in tracked paths; enforced by the find itself).
cxx_files() {
    for d in src tests bench examples; do
        [ -d "$root/$d" ] && find "$root/$d" -type f \
            \( -name '*.cpp' -o -name '*.h' \)
    done
}

run_lint() {
    # R1: raw synchronisation primitives.
    r1_pattern='std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|shared_mutex|shared_lock|recursive_mutex|timed_mutex)[^[:alnum:]_]'
    r1_hits=$(cxx_files | grep -v 'common/annotated_mutex\.h$' |
        xargs -r grep -nE "$r1_pattern" /dev/null 2>/dev/null || true)
    if [ -n "$r1_hits" ]; then
        printf '%s\n' "$r1_hits" >&2
        fail "raw std synchronisation primitive outside common/annotated_mutex.h — use xysig::Mutex/CondVar/MutexLock (R1)"
    fi

    # R2: libc rand()/srand().
    r2_hits=$(cxx_files | xargs -r grep -nE \
        '(^|[^[:alnum:]_:])s?rand[[:space:]]*\(' /dev/null 2>/dev/null || true)
    if [ -n "$r2_hits" ]; then
        printf '%s\n' "$r2_hits" >&2
        fail "rand()/srand() call — all randomness goes through common/rng (R2)"
    fi

    # R3: catch blocks whose {...} body is pure whitespace (no code, no
    # comment). awk joins the body across lines before testing it.
    r3_hits=$(cxx_files | xargs -r awk '
        /catch[[:space:]]*\(/ {
            line = $0
            # Only bodies opening on the catch line are considered; the
            # project brace style guarantees that.
            if (match(line, /catch[[:space:]]*\([^)]*\)[[:space:]]*\{/)) {
                body = substr(line, RSTART + RLENGTH)
                start = FNR
                depth = 1
                while (depth > 0) {
                    n = length(body)
                    for (i = 1; i <= n; ++i) {
                        c = substr(body, i, 1)
                        if (c == "{") depth++
                        else if (c == "}") { depth--; if (depth == 0) break }
                    }
                    if (depth == 0) { body = substr(body, 1, i - 1); break }
                    if ((getline nxt) <= 0) break
                    body = body "\n" nxt
                }
                gsub(/[[:space:]\n]/, "", body)
                if (body == "")
                    printf "%s:%d: empty catch body\n", FILENAME, start
            }
        }' /dev/null 2>/dev/null || true)
    if [ -n "$r3_hits" ]; then
        printf '%s\n' "$r3_hits" >&2
        fail "catch block silently swallows the exception — handle it or comment why dropping it is correct (R3)"
    fi

    # R5: no std::cout/std::cerr in library code (src/ only).
    if [ -d "$root/src" ]; then
        r5_hits=$(find "$root/src" -type f \( -name '*.cpp' -o -name '*.h' \) |
            xargs -r grep -nE 'std::c(out|err)([^[:alnum:]_]|$)' /dev/null 2>/dev/null || true)
        if [ -n "$r5_hits" ]; then
            printf '%s\n' "$r5_hits" >&2
            fail "std::cout/std::cerr in src/ library code — stdout is NDJSON-only; emit through the structured wire/report paths (R5)"
        fi
    fi

    # R4: bench bit-identity gates.
    if [ -d "$root/bench" ]; then
        for bench in "$root"/bench/bench_*.cpp; do
            [ -e "$bench" ] || continue
            base=$(basename "$bench")
            if printf '%s\n' "$BIT_IDENTITY_ALLOWLIST" |
                grep -qx "$base"; then
                continue
            fi
            if ! grep -qiE 'bit[-_ ]identical' "$bench"; then
                fail "$base has no bit-identity gate marker — compare against the serial reference or allowlist it with a reason (R4)"
            fi
        done
    fi
}

run_self_test() {
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT

    check_fires() {
        # $1 = rule name; the staged tree in $tmp must FAIL the lint.
        if "$0" "$tmp" >/dev/null 2>&1; then
            echo "lint_invariants --self-test: rule $1 did NOT fire" >&2
            exit 1
        fi
        echo "self-test: rule $1 fires"
    }

    stage() { # fresh minimal tree
        rm -rf "$tmp/src" "$tmp/bench"
        mkdir -p "$tmp/src" "$tmp/bench"
    }

    # R1: raw mutex.
    stage
    printf '#include <mutex>\nstd::mutex m;\n' >"$tmp/src/bad.cpp"
    check_fires R1

    # R1 must also catch the lock types, not just the mutex.
    stage
    printf 'void f() { std::lock_guard<std::mutex> g(m); }\n' \
        >"$tmp/src/bad.cpp"
    check_fires R1-lock_guard

    # R2: libc rand.
    stage
    printf 'int noise() { return rand(); }\n' >"$tmp/src/bad.cpp"
    check_fires R2

    # R2: srand too.
    stage
    printf 'void seed() { srand(42); }\n' >"$tmp/src/bad.cpp"
    check_fires R2-srand

    # R3: empty catch body, single-line and multi-line forms.
    stage
    printf 'void f() { try { g(); } catch (...) {} }\n' >"$tmp/src/bad.cpp"
    check_fires R3
    stage
    printf 'void f() {\n  try { g(); } catch (const E&) {\n\n  }\n}\n' \
        >"$tmp/src/bad.cpp"
    check_fires R3-multiline

    # R4: bench without a bit-identity marker.
    stage
    printf 'int main() { return 0; }\n' >"$tmp/bench/bench_widget.cpp"
    check_fires R4

    # R5: stream insert in library code.
    stage
    printf '#include <iostream>\nvoid log_hit() { std::cout << "hit"; }\n' \
        >"$tmp/src/bad.cpp"
    check_fires R5
    stage
    printf '#include <iostream>\nvoid warn() { std::cerr << "boom"; }\n' \
        >"$tmp/src/bad.cpp"
    check_fires R5-cerr

    # Clean tree passes: comment-only catch, annotated mutex, marked and
    # allowlisted benches, identifiers merely ending in "rand".
    stage
    mkdir -p "$tmp/src/common"
    printf 'namespace std { class mutex; }\n' \
        >"$tmp/src/common/annotated_mutex.h" # R1 exempt by path
    cat >"$tmp/src/good.cpp" <<'EOF'
void f() {
    try {
        g();
    } catch (...) {
        // Teardown path: the peer is already being destroyed.
    }
    int strand(); // identifier merely ending in the banned name
    (void)strand();
}
EOF
    # std::cout is fine outside src/ (R5 exempts benches/tools/tests).
    printf '// gate: results are bit-identical to serial\n#include <iostream>\nint main(){ std::cout << "ok\\n"; }\n' \
        >"$tmp/bench/bench_widget.cpp"
    printf 'int main(){}\n' >"$tmp/bench/bench_fig1_lissajous.cpp"
    if ! "$0" "$tmp" >/dev/null 2>&1; then
        echo "lint_invariants --self-test: clean tree FAILED the lint" >&2
        "$0" "$tmp" >&2 || true
        exit 1
    fi
    echo "self-test: clean tree passes"
    echo "lint_invariants --self-test: all rules verified"
}

if [ "$self_test" -eq 1 ]; then
    run_self_test
    exit 0
fi

run_lint
if [ "$failures" -gt 0 ]; then
    echo "lint_invariants: $failures rule violation(s)" >&2
    exit 1
fi
echo "lint_invariants: clean"
