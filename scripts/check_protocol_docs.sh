#!/usr/bin/env sh
# Replays every json-fenced line of docs/PROTOCOL.md through the real
# protocol parser (`sweep_server --check`), so documented examples cannot
# drift from the implementation. Usage:
#
#   scripts/check_protocol_docs.sh ./build/example_sweep_server [docs/PROTOCOL.md]
#
# Exits non-zero when extraction finds nothing (the doc or its fences
# moved) or when any example line fails validation.
set -eu

server="${1:?usage: check_protocol_docs.sh <sweep_server binary> [protocol.md]}"
doc="${2:-docs/PROTOCOL.md}"

lines=$(awk '/^```json$/{f=1;next} /^```$/{f=0} f' "$doc")
count=$(printf '%s\n' "$lines" | grep -c '[^[:space:]]' || true)
if [ "$count" -lt 35 ]; then
    echo "check_protocol_docs: only $count example lines extracted from $doc — fences moved?" >&2
    exit 1
fi
printf '%s\n' "$lines" | "$server" --check
echo "check_protocol_docs: $count documented example lines pass the parser"
