// Beyond the paper's Biquad: testing a Sallen-Key low-pass with the same
// digital-signature method. Demonstrates that the flow is CUT-agnostic:
// any circuit exposing (x, y) observation nodes can be verified.

#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "filter/sallen_key.h"
#include "monitor/table1.h"

int main() {
    using namespace xysig;

    // Design a Sallen-Key section equivalent to the paper's Biquad target
    // (f0 = 14 kHz; Q limited to what the unity-gain topology gives).
    filter::BiquadDesign design;
    design.f0 = 14e3;
    design.q = 0.9;
    design.gain = 1.0;
    const filter::Biquad behavioural(design);

    core::PipelineOptions options;
    options.samples_per_period = 1024;
    core::SignaturePipeline pipeline(monitor::build_table1_bank(),
                                     core::paper_stimulus(), options);
    pipeline.set_golden(filter::BehaviouralCut(behavioural));

    TextTable table({"f0 deviation (%)", "NDF (Sallen-Key netlist)",
                     "NDF (behavioural)"});
    for (const double dev : {-15.0, -8.0, -3.0, 3.0, 8.0, 15.0}) {
        filter::SallenKeyCircuit ckt = filter::build_sallen_key(
            filter::SallenKeyDesign::from_biquad(design, 10e3));
        ckt.inject_f0_shift(dev / 100.0);
        filter::SpiceCut netlist_cut(ckt.netlist, ckt.input_source,
                                     ckt.input_node, ckt.lp_node, 8);
        const double ndf_netlist = pipeline.ndf_of(netlist_cut);

        const filter::BehaviouralCut fast_cut(
            behavioural.with_f0_shift(dev / 100.0));
        const double ndf_fast = pipeline.ndf_of(fast_cut);

        table.add_row({format_double(dev, 3), format_double(ndf_netlist, 4),
                       format_double(ndf_fast, 4)});
    }
    table.print(std::cout);
    std::cout << "\nThe netlist and behavioural paths agree, and NDF grows "
                 "with |deviation| -- the signature method transfers to a "
                 "different CUT topology unchanged.\n";
    return 0;
}
