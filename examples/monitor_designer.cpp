// Monitor design exploration: how a test engineer would use the library to
// place a new nonlinear zone boundary.
//
// Workflow: pick input assignment + widths + bias -> trace the resulting
// control curve -> check it against the transistor-level comparator ->
// estimate manufacturing robustness (Monte-Carlo boundary displacement) and
// silicon cost (common-centroid layout area).

#include <cmath>
#include <iostream>

#include "common/ascii_plot.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "common/table.h"
#include "layout/area.h"
#include "mc/monte_carlo.h"
#include "monitor/comparator_netlist.h"
#include "monitor/table1.h"

int main() {
    using namespace xysig;
    using monitor::MonitorInput;

    // A custom monitor: nonlinear arc via X+Y addition against a 0.65 V
    // reference, slightly asymmetric widths to tilt the arc.
    monitor::MonitorConfig cfg;
    cfg.name = "custom-arc";
    cfg.device = monitor::default_table1_options().device;
    cfg.vds_eval = 0.6;
    cfg.legs[0] = {MonitorInput::y_axis, 0.0, 2.2e-6, 0.0, 1.0};
    cfg.legs[1] = {MonitorInput::x_axis, 0.0, 1.5e-6, 0.0, 1.0};
    cfg.legs[2] = {MonitorInput::dc, 0.65, 1.8e-6, 0.0, 1.0};
    cfg.legs[3] = {MonitorInput::dc, 0.65, 1.8e-6, 0.0, 1.0};

    const monitor::MosCurrentBoundary boundary(cfg);

    // 1. Trace and plot the control curve.
    const auto pts = trace_boundary(boundary, 0.0, 1.0, 200, 0.0, 1.0);
    AsciiCanvas canvas(0.0, 1.0, 0.0, 1.0, 72, 28);
    for (const auto& p : pts)
        canvas.point(p.x, p.y, '*');
    canvas.print(std::cout, "control curve of '" + cfg.name + "'");

    // 2. Cross-check three points against the transistor-level comparator.
    monitor::ComparatorCircuit ckt = monitor::build_comparator(cfg);
    TextTable check({"point", "closed-form side", "netlist decision", "agree"});
    for (const auto& [x, y] : {std::pair{0.2, 0.2}, std::pair{0.8, 0.8},
                               std::pair{0.9, 0.1}}) {
        const bool cf = boundary.current_difference(x, y) > 0.0;
        const bool nl = monitor::comparator_decision(ckt, x, y);
        check.add_row({"(" + format_double(x, 2) + "," + format_double(y, 2) + ")",
                       cf ? "1" : "0", nl ? "1" : "0", cf == nl ? "yes" : "NO"});
    }
    check.print(std::cout);

    // 3. Monte-Carlo robustness: spread of the curve's y-intercept at x=0.2.
    // The parallel engine forks all per-sample RNG streams up front, so the
    // samples are bit-identical to the serial run_monte_carlo(300, 7, fn)
    // this example used before, at any worker count.
    const mc::PelgromModel pelgrom;
    const mc::ProcessVariation process;
    const auto samples = mc::run_monte_carlo_parallel(300, 7, [&](Rng& rng) {
        const auto perturbed =
            monitor::perturb_monitor(cfg, pelgrom, process, rng);
        const monitor::MosCurrentBoundary b(perturbed);
        const auto roots = trace_boundary(b, 0.2, 0.21, 2, 0.0, 1.0);
        return roots.empty() ? std::nan("") : roots.front().y;
    });
    std::vector<double> valid;
    for (double s : samples)
        if (!std::isnan(s))
            valid.push_back(s);
    std::cout << "\nboundary y(0.2) under process+mismatch (N=300): mean="
              << format_double(mean(valid), 4)
              << " V, sigma=" << format_double(stddev(valid), 4) << " V\n";

    // 4. Silicon cost.
    const auto area = layout::monitor_total_area(cfg, 2e-6);
    std::cout << "estimated monitor area: "
              << format_double(area.area * 1e12, 4) << " um^2 (core + output "
              << "stage; paper's fabricated monitor: 116.1 um^2)\n";
    return 0;
}
