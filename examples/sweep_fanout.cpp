// sweep_fanout — multi-process fan-out driver CLI over server::FanoutDriver.
//
// Takes one NDJSON sweep job (same schema sweep_server accepts, see
// docs/PROTOCOL.md), splits it into contiguous member-range partitions,
// runs each partition on its own worker — a `sweep_server` child process
// (--server=PATH) or an in-process loopback peer (default) — and streams
// the merged results to stdout in ascending global member order, followed
// by a fanout_done summary (per-partition timings, re-dispatch counts,
// straggler stats). With --verify the merged stream is additionally gated
// on exact per-member identity with a single-process SweepService run;
// the exit code is non-zero if that gate fails.
//
//   printf '%s\n' '{"job":"deviations","grid":{"from":-20,"to":20,"count":1200}}' |
//     ./build/example_sweep_fanout --processes=4 \
//         --server=./build/example_sweep_server --verify
//
// Flags:
//   --processes=N      partition count (default 2)
//   --server=PATH      spawn PATH per partition (default: in-process loopback)
//   --connect=HOST:PORT connect each partition to a listening
//                      `sweep_server --listen` instead of spawning children
//   --workers=N        worker threads per worker process (0 = its default)
//   --spp=N            samples per period handed to workers (default 512)
//   --shard-size=N     in-worker shard size (default 64)
//   --timeout=SECONDS  per-partition inactivity timeout before re-dispatch
//   --max-attempts=N   dispatch attempts per dispatched range (default 3)
//   --steal-threshold=N work-stealing: idle partitions take the top half
//                      of the slowest tail once it is >= N members (0 = off)
//   --verify           single-process bit-identity gate
//   --quiet            suppress merged result lines (summary/verify only)
//   --job=JSON         job inline instead of the first stdin line

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "server/fanout.h"
#include "server/json.h"
#include "server/tcp_transport.h"
#include "server/transport.h"
#include "server/wire.h"

namespace {

using namespace xysig;
using server::JsonValue;

void emit(const JsonValue::Object& obj) {
    std::cout << JsonValue(obj).dump() << "\n" << std::flush;
}

} // namespace

int main(int argc, char** argv) {
    unsigned processes = 2;
    std::string server_path;
    std::string connect_endpoint;
    unsigned workers = 0;
    std::size_t spp = 512;
    std::size_t shard_size = 64;
    double timeout = 0.0;
    unsigned max_attempts = 3;
    std::size_t steal_threshold = 0;
    bool verify = false;
    bool quiet = false;
    std::string job_text;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--processes=", 0) == 0)
            processes = static_cast<unsigned>(std::stoul(arg.substr(12)));
        else if (arg.rfind("--server=", 0) == 0)
            server_path = arg.substr(9);
        else if (arg.rfind("--connect=", 0) == 0)
            connect_endpoint = arg.substr(10);
        else if (arg.rfind("--steal-threshold=", 0) == 0)
            steal_threshold = std::stoul(arg.substr(18));
        else if (arg.rfind("--workers=", 0) == 0)
            workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--spp=", 0) == 0)
            spp = std::stoul(arg.substr(6));
        else if (arg.rfind("--shard-size=", 0) == 0)
            shard_size = std::stoul(arg.substr(13));
        else if (arg.rfind("--timeout=", 0) == 0)
            timeout = std::stod(arg.substr(10));
        else if (arg.rfind("--max-attempts=", 0) == 0)
            max_attempts = static_cast<unsigned>(std::stoul(arg.substr(15)));
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg.rfind("--job=", 0) == 0)
            job_text = arg.substr(6);
        else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }
    if (job_text.empty() && !std::getline(std::cin, job_text)) {
        std::cerr << "sweep_fanout: no job (pass --job=... or one NDJSON job "
                     "line on stdin)\n";
        return 2;
    }

    server::FanoutDriver::TransportFactory factory;
    if (!connect_endpoint.empty()) {
        const std::size_t colon = connect_endpoint.rfind(':');
        if (colon == std::string::npos || colon + 1 >= connect_endpoint.size()) {
            std::cerr << "sweep_fanout: --connect expects HOST:PORT\n";
            return 2;
        }
        const std::string host = connect_endpoint.substr(0, colon);
        const unsigned short port = static_cast<unsigned short>(
            std::stoul(connect_endpoint.substr(colon + 1)));
        factory = [host, port] {
            return std::make_unique<server::TcpTransport>(host, port);
        };
    } else if (!server_path.empty()) {
        std::vector<std::string> worker_argv = {server_path,
                                                "--spp=" + std::to_string(spp)};
        if (workers != 0)
            worker_argv.push_back("--workers=" + std::to_string(workers));
        worker_argv.push_back("--shard-size=" + std::to_string(shard_size));
        factory = [worker_argv] {
            return std::make_unique<server::ProcessTransport>(worker_argv);
        };
    } else {
        server::LoopbackTransport::Options lopts;
        lopts.workers = workers == 0 ? 2 : workers;
        lopts.shard_size = shard_size;
        lopts.samples_per_period = spp;
        factory = [lopts] {
            return std::make_unique<server::LoopbackTransport>(lopts);
        };
    }

    server::FanoutOptions fopts;
    fopts.partitions = processes;
    fopts.read_timeout_seconds = timeout;
    fopts.max_attempts = max_attempts;
    fopts.steal_threshold = steal_threshold;
    fopts.verify_single_process = verify;

    {
        JsonValue::Object o;
        o.emplace("event", "fanout_start");
        o.emplace("partitions", static_cast<std::size_t>(processes));
        o.emplace("transport", !connect_endpoint.empty() ? "tcp"
                               : server_path.empty()     ? "loopback"
                                                         : "process");
        o.emplace("version", server::kProtocolVersion);
        emit(o);
    }

    try {
        // Inside the try: invalid options (e.g. --processes=0) throw and
        // must become an error event + exit 1 like every other failure.
        server::FanoutDriver driver(std::move(factory), fopts);
        const server::FanoutSummary summary = driver.run(
            job_text, [&](const server::FanoutRecord& r) {
                if (quiet)
                    return;
                JsonValue::Object o;
                o.emplace("event", "result");
                o.emplace("member", r.member);
                o.emplace("ndf", r.ndf);
                o.emplace("ndf_hex", r.ndf_hex);
                o.emplace("label", r.label);
                if (r.signature.has_value())
                    o.emplace("signature", *r.signature);
                emit(o);
            });

        {
            JsonValue::Array parts;
            for (const server::PartitionOutcome& p : summary.partitions) {
                JsonValue::Object o;
                o.emplace("partition", p.partition);
                o.emplace("first_member", p.first_member);
                o.emplace("member_count", p.member_count);
                o.emplace("members_done", p.members_done);
                o.emplace("attempts", static_cast<std::size_t>(p.attempts));
                o.emplace("seconds", p.seconds);
                o.emplace("netlist_clones", p.netlist_clones);
                o.emplace("steals", static_cast<std::size_t>(p.steals));
                o.emplace("cancelled", p.cancelled);
                parts.emplace_back(std::move(o));
            }
            JsonValue::Object o;
            o.emplace("event", "fanout_done");
            o.emplace("members_total", summary.members_total);
            o.emplace("members_done", summary.members_done);
            o.emplace("cancelled", summary.cancelled);
            o.emplace("seconds", summary.seconds);
            o.emplace("netlist_clones", summary.netlist_clones);
            o.emplace("redispatches",
                      static_cast<std::size_t>(summary.redispatches));
            o.emplace("steals", static_cast<std::size_t>(summary.steals));
            o.emplace("heartbeats", summary.heartbeats);
            if (!summary.warnings.empty()) {
                JsonValue::Array warnings;
                for (const std::string& w : summary.warnings)
                    warnings.emplace_back(w);
                o.emplace("warnings", std::move(warnings));
            }
            o.emplace("partition_seconds_min", summary.partition_seconds_min);
            o.emplace("partition_seconds_max", summary.partition_seconds_max);
            o.emplace("partition_seconds_mean", summary.partition_seconds_mean);
            o.emplace("partitions", std::move(parts));
            emit(o);
        }

        if (summary.verify_ran) {
            JsonValue::Object o;
            o.emplace("event", "verify");
            o.emplace("bit_identical", summary.verify_identical);
            o.emplace("members", summary.members_total);
            emit(o);
            return summary.verify_identical ? 0 : 1;
        }
        return 0;
    } catch (const std::exception& e) {
        JsonValue::Object o;
        o.emplace("event", "error");
        o.emplace("message", std::string(e.what()));
        emit(o);
        return 1;
    }
}
