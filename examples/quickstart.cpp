// Quickstart: the complete paper flow in ~40 lines.
//
// Build the six Table I monitors, drive the Biquad CUT with the two-tone
// stimulus, capture digital signatures, and decide PASS/FAIL from the
// normalized discrepancy factor.

#include <iostream>

#include "core/decision.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "monitor/table1.h"

int main() {
    using namespace xysig;

    // 1. The on-chip monitor bank (Table I) and the test stimulus.
    core::PipelineOptions options;
    options.samples_per_period = 4096;
    core::SignaturePipeline pipeline(monitor::build_table1_bank(),
                                     core::paper_stimulus(), options);

    // 2. Golden signature from the nominal CUT (f0 = 14 kHz low-pass Biquad).
    const filter::Biquad nominal = core::paper_biquad();
    pipeline.set_golden(filter::BehaviouralCut(nominal));

    // 3. Calibrate the PASS/FAIL band for a +/-10% f0 tolerance.
    std::vector<double> grid;
    for (int d = -20; d <= 20; d += 2)
        grid.push_back(d);
    const auto sweep = core::deviation_sweep(pipeline, nominal, grid);
    const auto threshold = core::NdfThreshold::from_sweep(sweep, 10.0);
    std::cout << "NDF threshold for +/-10% tolerance: " << threshold.threshold()
              << "\n\n";

    // 4. Test a few manufactured circuits.
    for (const double dev_percent : {0.5, 3.0, 8.0, 12.0, -15.0}) {
        const filter::BehaviouralCut cut(
            nominal.with_f0_shift(dev_percent / 100.0));
        const double ndf_value = pipeline.ndf_of(cut);
        const bool pass =
            threshold.classify(ndf_value) == core::TestOutcome::pass;
        std::cout << "CUT with f0 deviation " << dev_percent << "%\tNDF = "
                  << ndf_value << "\t-> " << (pass ? "PASS" : "FAIL") << "\n";
    }
    return 0;
}
