// sweep_server — newline-delimited-JSON front-end over server::SweepService.
//
// Reads one JSON request (job or command) per stdin line, streams NDJSON
// events (ready, job_start, result, progress, job_done, verify, stats,
// error) to stdout, and keeps the service — worker pool, pipeline,
// golden-signature cache — alive across jobs. docs/PROTOCOL.md is the
// normative spec of the wire format; the protocol logic itself lives in
// src/server/wire.{h,cpp} (ServerSession), shared with the fan-out
// driver's loopback transport, so this file is only plumbing:
//
//  * a stdin reader thread that queues request lines and applies
//    {"cmd":"cancel"} on receipt (so a running job can be cancelled);
//  * --check mode: validate each stdin line against the protocol schema
//    without running anything — CI replays the PROTOCOL.md examples
//    through it so documented lines can never drift from the parser.
//
// Flags: --workers=N --shard-size=N --spp=N (pipeline samples per period)
//        --check (schema-validate stdin lines, exit non-zero on the first
//        invalid one)

#include <condition_variable>
#include <deque>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include "server/wire.h"

namespace {

using namespace xysig;

/// --check: one line in, one verdict out. Exit code 1 on the first
/// schema violation, with the offending line number on stderr.
int run_check_mode() {
    std::string line;
    std::size_t line_number = 0;
    std::size_t checked = 0;
    while (std::getline(std::cin, line)) {
        ++line_number;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        try {
            server::check_protocol_line(line);
            ++checked;
        } catch (const std::exception& e) {
            std::cerr << "sweep_server --check: line " << line_number << ": "
                      << e.what() << "\n";
            return 1;
        }
    }
    std::cout << "sweep_server --check: " << checked << " lines ok\n";
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    unsigned workers = 0;
    std::size_t shard_size = 64;
    std::size_t samples_per_period = 512;
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workers=", 0) == 0)
            workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--shard-size=", 0) == 0)
            shard_size = std::stoul(arg.substr(13));
        else if (arg.rfind("--spp=", 0) == 0)
            samples_per_period = std::stoul(arg.substr(6));
        else if (arg == "--check")
            check = true;
        else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }
    if (check)
        return run_check_mode();

    server::SweepServiceOptions sopts;
    sopts.workers = workers;
    sopts.shard_size = shard_size;
    server::SweepService service(server::make_paper_pipeline(samples_per_period),
                                 sopts);
    server::ServerSession session(service, [](const std::string& line) {
        std::cout << line << "\n" << std::flush;
    });
    session.emit_ready(samples_per_period);

    // Request lines are processed in order on this (main) thread; the
    // reader thread exists so {"cmd":"cancel"} takes effect while a job is
    // running — it is applied on receipt instead of being queued. The
    // queue is bounded: past the cap the reader stops consuming stdin, so
    // a producer piping a huge job script is throttled by the OS pipe
    // (the backpressure the old single-threaded getline loop had), at the
    // cost of cancels behind >kMaxPending unread lines waiting their turn.
    constexpr std::size_t kMaxPending = 256;
    std::mutex mutex;
    std::condition_variable cv;       // signalled when a line is queued / EOF
    std::condition_variable space_cv; // signalled when a line is consumed
    std::deque<std::string> requests;
    bool eof = false;

    std::thread reader([&] {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            std::string cmd;
            try {
                const server::JsonValue v = server::JsonValue::parse(line);
                if (v.is_object()) {
                    cmd = v.string_or("cmd", "");
                    if (cmd == "cancel") {
                        session.cancel(v.string_or("id", ""));
                        continue;
                    }
                }
            } catch (const std::exception&) {
                // malformed: queue it so the session reports the error
            }
            const bool quit = cmd == "quit";
            {
                std::unique_lock<std::mutex> lock(mutex);
                space_cv.wait(lock,
                              [&] { return requests.size() < kMaxPending; });
                requests.push_back(line);
            }
            cv.notify_all();
            if (quit)
                break; // stop reading so the thread is joinable after quit
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            eof = true;
        }
        cv.notify_all();
    });

    while (true) {
        std::string line;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return eof || !requests.empty(); });
            if (requests.empty())
                break; // EOF with nothing pending
            line = std::move(requests.front());
            requests.pop_front();
        }
        space_cv.notify_all();
        if (!session.handle_line(line))
            break; // quit
    }
    {
        // Unblock a reader parked on a full queue before joining (it will
        // park again only after a push, and EOF/quit paths set it free).
        std::lock_guard<std::mutex> lock(mutex);
        requests.clear();
    }
    space_cv.notify_all();
    reader.join();
    return session.all_verified() ? 0 : 1;
}
