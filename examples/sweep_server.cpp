// sweep_server — newline-delimited-JSON front-end over server::SweepService.
//
// Reads one JSON job per stdin line, streams NDJSON events (job_start,
// result, progress, job_done, verify, error) to stdout, and keeps the
// service — worker pool, pipeline, golden-signature cache — alive across
// jobs, so universes of 10^4+ members can be driven from outside the
// process. See the README "Sharded sweep service" section for the schema.
//
// Job lines:
//   {"job":"deviations","parameter":"f0","deviations":[-10,-5,5,10]}
//   {"job":"deviations","parameter":"q","grid":{"from":-20,"to":20,"count":1000}}
//   {"job":"spice_faults","universe":"bridging+open","settle_periods":2}
//   {"cmd":"stats"}   {"cmd":"quit"}
// Common job fields: "id" (echoed on every event), "shard_size",
// "progress_every" (members between progress events; 0 = off),
// "cancel_after" (cancel the job after K streamed results; tests the
// cancellation path end-to-end), "emit_signatures" (default true),
// "verify_serial" (re-evaluate the whole universe serially — clone per
// fault — and check the streamed NDFs are bit-identical; the process exits
// non-zero if any verification ever failed).
//
// Flags: --workers=N --shard-size=N --spp=N (pipeline samples per period).

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "capture/fault_injection.h"
#include "common/strings.h"
#include "core/batch_ndf.h"
#include "core/golden_cache.h"
#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"
#include "server/json.h"
#include "server/sweep_service.h"

namespace {

using namespace xysig;
using server::JsonValue;

/// Compact exact signature string: "code@t;code@t;..." with hexfloat times,
/// so two signatures compare equal iff the chronograms are bit-identical.
std::string signature_string(const capture::Chronogram& ch) {
    std::string out;
    for (const auto& ev : ch.events()) {
        if (!out.empty())
            out.push_back(';');
        out += std::to_string(ev.code);
        out.push_back('@');
        out += format_double_exact(ev.t);
    }
    return out;
}

void emit(const JsonValue::Object& obj) {
    std::cout << JsonValue(obj).dump() << "\n" << std::flush;
}

void emit_error(const std::string& id, const std::string& message) {
    JsonValue::Object o;
    o.emplace("event", "error");
    if (!id.empty())
        o.emplace("id", id);
    o.emplace("message", message);
    emit(o);
}

struct ParsedJob {
    server::SweepJob job;
    std::vector<double> deviations;     // deviation jobs
    core::SweptParameter parameter = core::SweptParameter::f0;
    bool is_spice = false;
    std::vector<capture::NetlistFault> faults; // spice jobs
    std::shared_ptr<const spice::Netlist> nominal;
    core::SpiceObservation observation;
};

/// Builds the SweepJob (and keeps the pieces a serial verification needs).
ParsedJob parse_job(const JsonValue& v) {
    ParsedJob parsed;
    const std::string kind = v.at("job").as_string();
    if (kind == "deviations") {
        const std::string param = v.string_or("parameter", "f0");
        if (param != "f0" && param != "q")
            throw InvalidInput("sweep_server: parameter must be 'f0' or 'q'");
        parsed.parameter = param == "f0" ? core::SweptParameter::f0
                                         : core::SweptParameter::q;
        if (v.has("deviations")) {
            for (const JsonValue& d : v.at("deviations").as_array())
                parsed.deviations.push_back(d.as_number());
        } else {
            const JsonValue& grid = v.at("grid");
            const double from = grid.at("from").as_number();
            const double to = grid.at("to").as_number();
            const auto count =
                static_cast<std::size_t>(grid.at("count").as_number());
            if (count < 2)
                throw InvalidInput("sweep_server: grid.count must be >= 2");
            for (std::size_t i = 0; i < count; ++i)
                parsed.deviations.push_back(
                    from + (to - from) * static_cast<double>(i) /
                               static_cast<double>(count - 1));
        }
        parsed.job = server::SweepJob::deviation_grid(
            core::paper_biquad(), parsed.deviations, parsed.parameter);
    } else if (kind == "spice_faults") {
        auto circuit = filter::build_tow_thomas(filter::TowThomasDesign::from_biquad(
            core::paper_biquad().design(), 10e3));
        capture::FaultUniverseOptions fopts;
        fopts.bridge_resistance = v.number_or("bridge_resistance", 100.0);
        fopts.open_factor = v.number_or("open_factor", 1e6);
        fopts.bridge_to_ground = v.bool_or("bridge_to_ground", false);
        const std::string universe = v.string_or("universe", "bridging+open");
        if (universe.find("bridging") != std::string::npos)
            parsed.faults =
                capture::enumerate_bridging_faults(circuit.netlist, fopts);
        if (universe.find("open") != std::string::npos) {
            const auto opens =
                capture::enumerate_open_faults(circuit.netlist, fopts);
            parsed.faults.insert(parsed.faults.end(), opens.begin(), opens.end());
        }
        if (parsed.faults.empty())
            throw InvalidInput(
                "sweep_server: universe must name 'bridging' and/or 'open'");
        parsed.observation = {circuit.input_source, circuit.input_node,
                              circuit.lp_node,
                              static_cast<int>(v.number_or("settle_periods", 2))};
        parsed.nominal =
            std::make_shared<spice::Netlist>(std::move(circuit.netlist));
        parsed.is_spice = true;
        parsed.job = server::SweepJob::fault_universe(
            parsed.nominal, parsed.faults, parsed.observation);
    } else {
        throw InvalidInput("sweep_server: unknown job kind '" + kind + "'");
    }
    parsed.job.shard_size =
        static_cast<std::size_t>(v.number_or("shard_size", 0.0));
    return parsed;
}

bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Serial reference evaluation of the same universe (clone per fault for
/// SPICE jobs — the independent check of the service's clone-reuse scheme).
std::vector<double> serial_reference(const ParsedJob& parsed,
                                     const core::SignaturePipeline& pipe) {
    std::vector<double> out;
    core::NdfScratch scratch;
    if (parsed.is_spice) {
        const auto universe = core::BatchNdfEvaluator::build_fault_universe(
            *parsed.nominal, parsed.faults, parsed.observation);
        out.reserve(universe.size());
        for (const auto& cut : universe) {
            try {
                out.push_back(pipe.ndf_of(*cut, scratch));
            } catch (const NumericError&) {
                out.push_back(std::numeric_limits<double>::quiet_NaN());
            }
        }
        return out;
    }
    const filter::Biquad nominal = core::paper_biquad();
    out.reserve(parsed.deviations.size());
    for (const double dev : parsed.deviations) {
        const double frac = dev / 100.0;
        const filter::BehaviouralCut cut(parsed.parameter ==
                                                 core::SweptParameter::f0
                                             ? nominal.with_f0_shift(frac)
                                             : nominal.with_q_shift(frac));
        try {
            out.push_back(pipe.ndf_of(cut, scratch));
        } catch (const NumericError&) {
            out.push_back(std::numeric_limits<double>::quiet_NaN());
        }
    }
    return out;
}

void emit_stats(const server::SweepService& service) {
    const auto stats = service.stats();
    const auto& cache = core::GoldenSignatureCache::instance();
    JsonValue::Object cache_obj;
    cache_obj.emplace("hits", cache.hits());
    cache_obj.emplace("misses", cache.misses());
    cache_obj.emplace("size", cache.size());
    cache_obj.emplace("evictions", cache.evictions());
    cache_obj.emplace("capacity", cache.capacity());
    JsonValue::Object o;
    o.emplace("event", "stats");
    o.emplace("jobs", stats.jobs);
    o.emplace("members", stats.members);
    o.emplace("shards", stats.shards);
    o.emplace("netlist_clones", stats.netlist_clones);
    o.emplace("workers", static_cast<std::size_t>(service.worker_count()));
    o.emplace("golden_cache", std::move(cache_obj));
    emit(o);
}

} // namespace

int main(int argc, char** argv) {
    unsigned workers = 0;
    std::size_t shard_size = 64;
    std::size_t samples_per_period = 512;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workers=", 0) == 0)
            workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--shard-size=", 0) == 0)
            shard_size = std::stoul(arg.substr(13));
        else if (arg.rfind("--spp=", 0) == 0)
            samples_per_period = std::stoul(arg.substr(6));
        else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }

    core::PipelineOptions popts;
    popts.samples_per_period = samples_per_period;
    core::SignaturePipeline pipeline(monitor::build_table1_bank(),
                                     core::paper_stimulus(), popts);
    server::SweepServiceOptions sopts;
    sopts.workers = workers;
    sopts.shard_size = shard_size;
    server::SweepService service(std::move(pipeline), sopts);

    {
        JsonValue::Object o;
        o.emplace("event", "ready");
        o.emplace("workers", static_cast<std::size_t>(service.worker_count()));
        o.emplace("shard_size", sopts.shard_size);
        o.emplace("samples_per_period", samples_per_period);
        emit(o);
    }

    bool all_verified = true;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::string id;
        try {
            const JsonValue v = JsonValue::parse(line);
            id = v.string_or("id", "");
            if (v.has("cmd")) {
                const std::string cmd = v.at("cmd").as_string();
                if (cmd == "quit")
                    break;
                if (cmd == "stats") {
                    emit_stats(service);
                    continue;
                }
                throw InvalidInput("sweep_server: unknown cmd '" + cmd + "'");
            }

            ParsedJob parsed = parse_job(v);
            const auto progress_every =
                static_cast<std::size_t>(v.number_or("progress_every", 0.0));
            const auto cancel_after =
                static_cast<std::size_t>(v.number_or("cancel_after", 0.0));
            const bool emit_signatures = v.bool_or("emit_signatures", true);
            const bool verify_serial = v.bool_or("verify_serial", false);

            {
                JsonValue::Object o;
                o.emplace("event", "job_start");
                if (!id.empty())
                    o.emplace("id", id);
                o.emplace("members", parsed.job.size());
                o.emplace("workers",
                          static_cast<std::size_t>(service.worker_count()));
                emit(o);
            }

            server::SweepCancelToken cancel;
            std::vector<double> streamed;
            streamed.reserve(parsed.job.size());
            std::size_t delivered = 0;
            const auto on_result = [&](const server::SweepResult& r) {
                streamed.push_back(r.ndf);
                ++delivered;
                JsonValue::Object o;
                o.emplace("event", "result");
                if (!id.empty())
                    o.emplace("id", id);
                o.emplace("member", r.member_id);
                o.emplace("ndf", r.ndf);
                o.emplace("ndf_hex", format_double_exact(r.ndf));
                o.emplace("label", r.label);
                if (emit_signatures && r.signature.has_value()) {
                    o.emplace("signature", signature_string(*r.signature));
                    o.emplace("zone_visits", r.signature->zone_visits());
                }
                emit(o);
                if (progress_every != 0 && delivered % progress_every == 0) {
                    JsonValue::Object p;
                    p.emplace("event", "progress");
                    if (!id.empty())
                        p.emplace("id", id);
                    p.emplace("done", delivered);
                    p.emplace("total", parsed.job.size());
                    emit(p);
                }
                if (cancel_after != 0 && delivered >= cancel_after)
                    cancel.cancel();
            };

            const server::JobSummary summary =
                service.run(parsed.job, on_result, &cancel);

            {
                double shard_min = 0.0, shard_max = 0.0, shard_sum = 0.0;
                for (const auto& st : summary.shard_timings) {
                    shard_min = (shard_min == 0.0 || st.seconds < shard_min)
                                    ? st.seconds
                                    : shard_min;
                    shard_max = std::max(shard_max, st.seconds);
                    shard_sum += st.seconds;
                }
                JsonValue::Object o;
                o.emplace("event", "job_done");
                if (!id.empty())
                    o.emplace("id", id);
                o.emplace("members_total", summary.members_total);
                o.emplace("members_done", summary.members_done);
                o.emplace("shards_total", summary.shards_total);
                o.emplace("shards_done", summary.shards_done);
                o.emplace("cancelled", summary.cancelled);
                o.emplace("seconds", summary.seconds);
                o.emplace("netlist_clones", summary.netlist_clones);
                o.emplace("shard_seconds_min", shard_min);
                o.emplace("shard_seconds_max", shard_max);
                o.emplace("shard_seconds_mean",
                          summary.shard_timings.empty()
                              ? 0.0
                              : shard_sum / static_cast<double>(
                                                summary.shard_timings.size()));
                emit(o);
            }

            if (verify_serial && summary.cancelled) {
                // A cancelled job has a legitimately incomplete stream; that
                // is not a verification failure, there is just nothing to
                // compare against. Report the skip instead of a bogus false.
                JsonValue::Object o;
                o.emplace("event", "verify");
                if (!id.empty())
                    o.emplace("id", id);
                o.emplace("skipped_cancelled", true);
                emit(o);
            } else if (verify_serial) {
                const std::vector<double> reference =
                    serial_reference(parsed, service.pipeline());
                bool identical = streamed.size() == reference.size();
                if (identical)
                    for (std::size_t i = 0; i < reference.size(); ++i)
                        identical =
                            identical && same_bits(streamed[i], reference[i]);
                all_verified = all_verified && identical;
                JsonValue::Object o;
                o.emplace("event", "verify");
                if (!id.empty())
                    o.emplace("id", id);
                o.emplace("bit_identical", identical);
                o.emplace("members", reference.size());
                emit(o);
            }
        } catch (const std::exception& e) {
            emit_error(id, e.what());
        }
    }
    return all_verified ? 0 : 1;
}
