// sweep_server — newline-delimited-JSON front-end over server::SweepService
// through the server::JobScheduler queue.
//
// Reads one JSON request (job or command) per stdin line, streams NDJSON
// events (ready, queued, job_start, result, progress, job_done, verify,
// stats, error) to stdout, and keeps the service — worker pool, pipeline,
// golden-signature cache, whole-job result cache — alive across jobs.
// docs/PROTOCOL.md is the normative spec of the wire format; the protocol
// logic itself lives in src/server/wire.{h,cpp} (ServerSession), shared
// with the fan-out driver's loopback transport, so this file is only
// plumbing.
//
// Since protocol version 2, handle_line() submits jobs asynchronously —
// a job is acknowledged with a `queued` event and its results stream from
// a per-job emitter thread — so this main loop is a single-threaded
// getline: cancels take effect on receipt (submission never blocks the
// reader for the duration of a job), multiple in-flight jobs interleave
// on one connection, and backpressure comes from the scheduler's bounded
// queue + the OS pipe. {"cmd":"quit"} drains every in-flight job before
// the loop exits, as does EOF.
//
// With --listen=PORT the same protocol is served over TCP instead of
// stdin/stdout: the process binds the port (0 = ephemeral), announces
// `{"event":"listening","address":...,"port":N}` on stdout, and serves
// every accepted connection with its own session — by default each
// connection also gets its own worker pool, so one listening host can
// serve all partitions of a `sweep_fanout --connect` run concurrently.
//
// Flags: --workers=N --shard-size=N --spp=N (pipeline samples per period)
//        --queue=N (max queued jobs before submit blocks)
//        --job-cache=N (whole-job result cache entries; 0 disables)
//        --no-prefetch (disable golden prefetch for queued jobs)
//        --heartbeat=SECONDS (emit v3 heartbeat events; 0 = off)
//        --listen=PORT (serve TCP connections instead of stdin; 0 picks
//        an ephemeral port, announced on stdout)
//        --bind=ADDR (listen address, default 0.0.0.0)
//        --share-service (one worker pool shared by every connection)
//        --check (schema-validate stdin lines, exit non-zero on the first
//        invalid one)

#include <iostream>
#include <string>

#include "server/json.h"
#include "server/tcp_transport.h"
#include "server/wire.h"

namespace {

using namespace xysig;

/// --check: one line in, one verdict out. Exit code 1 on the first
/// schema violation, with the offending line number on stderr.
int run_check_mode() {
    std::string line;
    std::size_t line_number = 0;
    std::size_t checked = 0;
    while (std::getline(std::cin, line)) {
        ++line_number;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        try {
            server::check_protocol_line(line);
            ++checked;
        } catch (const std::exception& e) {
            std::cerr << "sweep_server --check: line " << line_number << ": "
                      << e.what() << "\n";
            return 1;
        }
    }
    std::cout << "sweep_server --check: " << checked << " lines ok\n";
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    unsigned workers = 0;
    std::size_t shard_size = 64;
    std::size_t samples_per_period = 512;
    server::SessionOptions session_opts;
    bool check = false;
    bool listen = false;
    unsigned short listen_port = 0;
    std::string bind_address = "0.0.0.0";
    bool share_service = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workers=", 0) == 0)
            workers = static_cast<unsigned>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--shard-size=", 0) == 0)
            shard_size = std::stoul(arg.substr(13));
        else if (arg.rfind("--spp=", 0) == 0)
            samples_per_period = std::stoul(arg.substr(6));
        else if (arg.rfind("--queue=", 0) == 0)
            session_opts.max_pending = std::stoul(arg.substr(8));
        else if (arg.rfind("--job-cache=", 0) == 0)
            session_opts.cache_capacity = std::stoul(arg.substr(12));
        else if (arg == "--no-prefetch")
            session_opts.prefetch_goldens = false;
        else if (arg.rfind("--heartbeat=", 0) == 0)
            session_opts.heartbeat_seconds = std::stod(arg.substr(12));
        else if (arg.rfind("--listen=", 0) == 0) {
            listen = true;
            listen_port = static_cast<unsigned short>(std::stoul(arg.substr(9)));
        } else if (arg.rfind("--bind=", 0) == 0)
            bind_address = arg.substr(7);
        else if (arg == "--share-service")
            share_service = true;
        else if (arg == "--check")
            check = true;
        else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }
    if (check)
        return run_check_mode();

    if (listen) {
        server::TcpListener::Options lopts;
        lopts.bind_address = bind_address;
        lopts.port = listen_port;
        lopts.workers = workers;
        lopts.shard_size = shard_size;
        lopts.samples_per_period = samples_per_period;
        lopts.session = session_opts;
        lopts.share_service = share_service;
        try {
            server::TcpListener listener(lopts);
            {
                // The one stdout line of listen mode: tells the launcher
                // (CI script, test harness) which port an ephemeral bind
                // actually got. The NDJSON conversation itself happens on
                // the accepted sockets.
                server::JsonValue::Object o;
                o.emplace("event", "listening");
                o.emplace("address", bind_address);
                o.emplace("port", static_cast<std::size_t>(listener.port()));
                std::cout << server::JsonValue(std::move(o)).dump() << "\n"
                          << std::flush;
            }
            listener.run(); // until the process is signalled
        } catch (const std::exception& e) {
            std::cerr << "sweep_server --listen: " << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    server::SweepServiceOptions sopts;
    sopts.workers = workers;
    sopts.shard_size = shard_size;
    server::SweepService service(server::make_paper_pipeline(samples_per_period),
                                 sopts);
    server::ServerSession session(
        service,
        [](const std::string& line) { std::cout << line << "\n" << std::flush; },
        session_opts);
    session.emit_ready(samples_per_period);

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        if (!session.handle_line(line))
            break; // quit (already drained)
    }
    session.drain(); // EOF path: flush in-flight jobs before exiting
    return session.all_verified() ? 0 : 1;
}
