// Noise robustness study (paper Section IV-C) as a standalone tool:
// sweeps the noise level and reports the minimum detectable f0 deviation
// at each, reproducing and extending the paper's single data point
// (3*sigma = 15 mV -> 1% detectable).

#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/detectability.h"
#include "core/paper_setup.h"
#include "monitor/table1.h"

int main() {
    using namespace xysig;

    core::PipelineOptions popts;
    popts.samples_per_period = 4096;
    core::SignaturePipeline pipeline(monitor::build_table1_bank(),
                                     core::paper_stimulus(), popts);

    const std::vector<double> deviations = {0.5, 1.0, 2.0, 5.0};

    TextTable table({"noise 3*sigma (mV)", "noise floor NDF", "threshold",
                     "min detectable |dev| (%)"});
    for (const double three_sigma_mv : {5.0, 15.0, 30.0, 60.0}) {
        core::DetectabilityOptions opts;
        opts.trials = 12;
        opts.periods_averaged = 16;
        opts.noise_sigma = three_sigma_mv / 3.0 * 1e-3;
        const auto study = core::noise_detectability(
            pipeline, core::paper_biquad(), deviations, opts, 4242);
        const double min_det = study.minimum_detectable();
        table.add_row({format_double(three_sigma_mv, 3),
                       format_double(study.noise_floor_mean, 4),
                       format_double(study.threshold, 4),
                       min_det == 0.0 ? ">5" : format_double(min_det, 3)});
    }
    table.print(std::cout);
    std::cout << "\npaper's operating point: 3*sigma = 15 mV -> 1% detectable "
                 "(second row).\n";
    return 0;
}
