// The bundled SPICE-deck parser in action: describe a circuit as text,
// solve its operating point, run AC and transient analyses -- no C++
// netlist construction needed.

#include <iostream>

#include "common/strings.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/parser.h"
#include "spice/transient.h"

int main() {
    using namespace xysig;

    // A common-source amplifier with the repo's 65 nm-flavoured model.
    const auto deck = R"(common-source amplifier
.MODEL nch NMOS VTO=0.3 KP=250u LAMBDA=0.1 N=1.35 LEVEL=EKV
VDD vdd 0 1.2
VG  g   0 SIN(0.6 0.01 10k) AC 1
RD  vdd d 10k
M1  d g 0 nch W=1.8u L=180n
.END
)";
    auto nl = spice::parse_deck(deck);

    const auto op = spice::dc_operating_point(nl);
    std::cout << "operating point: v(d) = " << format_double(op.voltage("d"), 4)
              << " V (" << op.newton_iterations << " Newton iterations)\n";

    spice::AcOptions ac;
    ac.f_start = 100.0;
    ac.f_stop = 1e6;
    ac.points_per_decade = 1;
    const auto freq = spice::run_ac(nl, ac);
    std::cout << "small-signal gain |v(d)/v(g)| at " << freq.frequencies()[0]
              << " Hz: " << format_double(freq.magnitude("d")[0], 4) << "\n";

    spice::TransientOptions tr;
    tr.t_stop = 200e-6;
    tr.dt = 0.1e-6;
    const auto wave = spice::run_transient(nl, tr);
    const auto sig = wave.signal("d");
    std::cout << "transient output swing: " << format_double(sig.min(), 4)
              << " .. " << format_double(sig.max(), 4) << " V over "
              << wave.step_count() << " accepted steps\n";
    return 0;
}
