// Production-style verification of a lot of Biquad filters, exercising the
// whole stack the way the paper intends it to be used on silicon:
//
//   * the CUT is the Tow-Thomas circuit realisation simulated by the
//     bundled SPICE engine (not the behavioural shortcut),
//   * manufacturing spread is emulated by random f0 deviations,
//   * signatures pass through the Fig. 5 capture hardware model
//     (10 MHz master clock, 16-bit counter),
//   * the PASS/FAIL band is calibrated for a +/-10% f0 tolerance.

#include <iostream>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/decision.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"

int main() {
    using namespace xysig;

    core::PipelineOptions options;
    options.samples_per_period = 1024; // SPICE transient resolution
    options.quantise = true;           // go through the capture hardware
    options.capture.f_clk = 10e6;
    options.capture.counter_bits = 16;
    core::SignaturePipeline pipeline(monitor::build_table1_bank(),
                                     core::paper_stimulus(), options);

    const filter::Biquad nominal = core::paper_biquad();
    pipeline.set_golden(filter::BehaviouralCut(nominal));

    // Tolerance band from the behavioural sweep (cheap calibration).
    std::vector<double> grid;
    for (int d = -20; d <= 20; d += 4)
        grid.push_back(d);
    const auto sweep = core::deviation_sweep(pipeline, nominal, grid);
    const auto threshold = core::NdfThreshold::from_sweep(sweep, 10.0);
    std::cout << "calibrated NDF threshold (+/-10% f0): "
              << format_double(threshold.threshold(), 4) << "\n\n";

    // A lot of 10 "manufactured" Tow-Thomas circuits: f0 spread sigma = 6%.
    Rng rng(88);
    TextTable report({"die", "true f0 dev (%)", "NDF", "verdict", "correct?"});
    int correct = 0;
    const int lot_size = 10;
    for (int die = 0; die < lot_size; ++die) {
        const double dev = rng.normal(0.0, 0.06);

        filter::TowThomasCircuit ckt = filter::build_tow_thomas(
            filter::TowThomasDesign::from_biquad(nominal.design(), 10e3));
        ckt.inject_f0_shift(dev);
        filter::SpiceCut cut(ckt.netlist, ckt.input_source, ckt.input_node,
                             ckt.lp_node, 8);

        const double ndf_value = pipeline.ndf_of(cut);
        const bool pass =
            threshold.classify(ndf_value) == core::TestOutcome::pass;
        const bool truly_good = std::abs(dev) <= 0.10;
        const bool agreed = pass == truly_good;
        correct += agreed ? 1 : 0;
        report.add_row({std::to_string(die), format_double(dev * 100.0, 3),
                        format_double(ndf_value, 4), pass ? "PASS" : "FAIL",
                        agreed ? "yes" : "NO (band edge)"});
    }
    report.print(std::cout);
    std::cout << "\nverdicts agreeing with the true +/-10% band: " << correct
              << "/" << lot_size << "\n";
    return 0;
}
