// Ablation over the Fig. 5 capture hardware parameters: NDF reconstruction
// error versus master clock frequency, and counter-overflow / missed-zone
// behaviour versus counter width m — each hardware point evaluated over a
// whole deviation universe through the parallel BatchNdfEvaluator instead
// of a serial per-point loop. Then benchmarks the capture kernel.

#include <algorithm>
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "capture/capture_unit.h"
#include "capture/fault_injection.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/batch_ndf.h"
#include "core/ndf.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

/// The f0-deviation universe every (f_clk, m) grid point is scored on.
const std::vector<double> kDeviationGrid = {-20.0, -15.0, -10.0, -5.0,
                                            5.0,   10.0,  15.0,  20.0};
constexpr std::size_t kPlus10Index = 5; // +10% entry of kDeviationGrid

void print_reproduction(std::ostream& out) {
    out << "=== [ablationB] Capture quantisation: f_clk and counter width ===\n";

    core::PipelineOptions opts;
    opts.samples_per_period = 8192;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    const filter::BehaviouralCut golden(core::paper_biquad());
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    const auto ideal_golden = pipe.chronogram(golden);
    const auto ideal_defect = pipe.chronogram(defective);
    const double ndf_ideal = core::ndf(ideal_defect, ideal_golden);

    // Unquantised reference NDF of the whole deviation universe (batch).
    pipe.set_golden(golden);
    const core::BatchNdfEvaluator ideal_batch(pipe);
    const auto ideal_ndfs =
        ideal_batch.evaluate_deviations(core::paper_biquad(), kDeviationGrid);

    out << "ideal (unquantised) NDF(+10% f0) = " << format_double(ndf_ideal, 5)
        << "\n\n";

    // Sweep the master clock at a wide counter: each clock point runs the
    // full deviation universe through the batch engine against a golden
    // captured at the same clock.
    report::Figure fig("ablationB1", "NDF error vs master clock", "f_clk (MHz)",
                       "max |NDF - ideal| over grid");
    report::Series s;
    s.name = "quantisation error";
    TextTable clk_table({"f_clk (MHz)", "NDF(+10%)", "|error| @ +10%",
                         "max |error| on grid", "golden entries",
                         "missed zones"});
    for (double f_mhz : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
        core::PipelineOptions qopts = opts;
        qopts.quantise = true;
        qopts.capture = {.f_clk = f_mhz * 1e6, .counter_bits = 32};
        core::SignaturePipeline qpipe(monitor::build_table1_bank(),
                                      core::paper_stimulus(), qopts);
        qpipe.set_golden(golden);
        const core::BatchNdfEvaluator batch(qpipe);
        const auto ndfs =
            batch.evaluate_deviations(core::paper_biquad(), kDeviationGrid);
        double max_err = 0.0;
        for (std::size_t i = 0; i < ndfs.size(); ++i)
            max_err = std::max(max_err, std::abs(ndfs[i] - ideal_ndfs[i]));
        const double err10 = std::abs(ndfs[kPlus10Index] - ndf_ideal);

        const capture::CaptureUnit unit({.f_clk = f_mhz * 1e6, .counter_bits = 32});
        const auto cap_g = unit.capture(ideal_golden);
        const auto cap_d = unit.capture(ideal_defect);
        s.xs.push_back(f_mhz);
        s.ys.push_back(max_err);
        clk_table.add_row({format_double(f_mhz, 4),
                           format_double(ndfs[kPlus10Index], 5),
                           format_double(err10, 5), format_double(max_err, 5),
                           std::to_string(cap_g.signature.size()),
                           std::to_string(cap_g.missed_zones + cap_d.missed_zones)});
    }
    fig.add_series(std::move(s));
    clk_table.print(out);
    fig.print(out);

    // Counter width at the paper-like 10 MHz clock: dwells up to ~40 us are
    // 400 ticks, so m < 9 bits overflows. The batch column shows whether
    // the whole deviation grid is still reconstructible at that width.
    out << "\ncounter width sweep at f_clk = 10 MHz (longest golden dwell sets "
           "the requirement):\n";
    TextTable m_table({"m (bits)", "overflow events", "grid NDF via batch"});
    for (unsigned m : {4u, 6u, 8u, 9u, 10u, 12u, 16u, 20u}) {
        const capture::CaptureUnit unit({.f_clk = 10e6, .counter_bits = m});
        const auto cap = unit.capture(ideal_golden);
        std::string recon;
        try {
            core::PipelineOptions qopts = opts;
            qopts.quantise = true;
            qopts.capture = {.f_clk = 10e6, .counter_bits = m};
            core::SignaturePipeline qpipe(monitor::build_table1_bank(),
                                          core::paper_stimulus(), qopts);
            qpipe.set_golden(golden);
            const core::BatchNdfEvaluator batch(qpipe);
            const auto ndfs =
                batch.evaluate_deviations(core::paper_biquad(), kDeviationGrid);
            double max_err = 0.0;
            for (std::size_t i = 0; i < ndfs.size(); ++i)
                max_err = std::max(max_err, std::abs(ndfs[i] - ideal_ndfs[i]));
            recon = "ok, max |error| = " + format_double(max_err, 5);
        } catch (const Error&) {
            recon = "REFUSED (corrupted time registers)";
        }
        m_table.add_row({std::to_string(m), std::to_string(cap.overflow_events),
                         recon});
    }
    m_table.print(out);

    // Tester self-faults (extension): a stuck monitor line is visible as a
    // golden self-NDF; a swapped bus pair does not change the verdict.
    out << "\ntester fault injection (extension):\n";
    TextTable f_table({"fault", "golden self-NDF", "NDF(+10% f0) under fault"});
    for (unsigned bit : {0u, 2u, 5u}) {
        const auto g_f = capture::apply_stuck_bit(
            ideal_golden, {.bit_index = bit, .stuck_value = true});
        const auto d_f = capture::apply_stuck_bit(
            ideal_defect, {.bit_index = bit, .stuck_value = true});
        f_table.add_row({"bit " + std::to_string(bit) + " stuck-1",
                         format_double(core::ndf(g_f, ideal_golden), 4),
                         format_double(core::ndf(d_f, g_f), 4)});
    }
    {
        const auto g_f = capture::apply_swapped_bits(ideal_golden, 1, 4);
        const auto d_f = capture::apply_swapped_bits(ideal_defect, 1, 4);
        f_table.add_row({"bus lines 1<->4 swapped",
                         format_double(core::ndf(g_f, ideal_golden), 4),
                         format_double(core::ndf(d_f, g_f), 4)});
    }
    f_table.print(out);

    report::PaperComparison cmp("Fig. 5 capture parameters (ablation)");
    cmp.add("quantisation", "asynchronous capture at master clock",
            "error falls ~1/f_clk; < 1e-3 NDF above ~5 MHz", "");
    cmp.add("counter width m", "m-bit counter holds the interval",
            "m >= 9 bits needed at 10 MHz for this CUT",
            "longest dwell ~40 us = 400 ticks");
    cmp.print(out);
}

void BM_CaptureAtClock(benchmark::State& state) {
    core::PipelineOptions opts;
    opts.samples_per_period = 8192;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    const auto ideal =
        pipe.chronogram(filter::BehaviouralCut(core::paper_biquad()));
    const capture::CaptureUnit unit(
        {.f_clk = static_cast<double>(state.range(0)) * 1e6, .counter_bits = 32});
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.capture(ideal));
}
BENCHMARK(BM_CaptureAtClock)->Arg(1)->Arg(10)->Arg(100);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
