// Ablation over the Fig. 5 capture hardware parameters: NDF reconstruction
// error versus master clock frequency, and counter-overflow / missed-zone
// behaviour versus counter width m. Then benchmarks the capture kernel.

#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "capture/capture_unit.h"
#include "capture/fault_injection.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/ndf.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

void print_reproduction(std::ostream& out) {
    out << "=== [ablationB] Capture quantisation: f_clk and counter width ===\n";

    core::PipelineOptions opts;
    opts.samples_per_period = 8192;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    const filter::BehaviouralCut golden(core::paper_biquad());
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    const auto ideal_golden = pipe.chronogram(golden);
    const auto ideal_defect = pipe.chronogram(defective);
    const double ndf_ideal = core::ndf(ideal_defect, ideal_golden);

    out << "ideal (unquantised) NDF(+10% f0) = " << format_double(ndf_ideal, 5)
        << "\n\n";

    // Sweep the master clock at a wide counter.
    report::Figure fig("ablationB1", "NDF error vs master clock", "f_clk (MHz)",
                       "|NDF - ideal|");
    report::Series s;
    s.name = "quantisation error";
    TextTable clk_table(
        {"f_clk (MHz)", "NDF", "|error|", "golden entries", "missed zones"});
    for (double f_mhz : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
        const capture::CaptureUnit unit({.f_clk = f_mhz * 1e6, .counter_bits = 32});
        const auto cap_g = unit.capture(ideal_golden);
        const auto cap_d = unit.capture(ideal_defect);
        const double v =
            core::ndf(cap_d.signature.to_chronogram(), cap_g.signature.to_chronogram());
        const double err = std::abs(v - ndf_ideal);
        s.xs.push_back(f_mhz);
        s.ys.push_back(err);
        clk_table.add_row({format_double(f_mhz, 4), format_double(v, 5),
                           format_double(err, 5),
                           std::to_string(cap_g.signature.size()),
                           std::to_string(cap_g.missed_zones + cap_d.missed_zones)});
    }
    fig.add_series(std::move(s));
    clk_table.print(out);
    fig.print(out);

    // Counter width at the paper-like 10 MHz clock: dwells up to ~40 us are
    // 400 ticks, so m < 9 bits overflows.
    out << "\ncounter width sweep at f_clk = 10 MHz (longest golden dwell sets "
           "the requirement):\n";
    TextTable m_table({"m (bits)", "overflow events", "reconstruction"});
    for (unsigned m : {4u, 6u, 8u, 9u, 10u, 12u, 16u, 20u}) {
        const capture::CaptureUnit unit({.f_clk = 10e6, .counter_bits = m});
        const auto cap = unit.capture(ideal_golden);
        std::string recon = "ok";
        try {
            (void)cap.signature.to_chronogram();
        } catch (const Error&) {
            recon = "REFUSED (corrupted time registers)";
        }
        m_table.add_row({std::to_string(m), std::to_string(cap.overflow_events),
                         recon});
    }
    m_table.print(out);

    // Tester self-faults (extension): a stuck monitor line is visible as a
    // golden self-NDF; a swapped bus pair does not change the verdict.
    out << "\ntester fault injection (extension):\n";
    TextTable f_table({"fault", "golden self-NDF", "NDF(+10% f0) under fault"});
    for (unsigned bit : {0u, 2u, 5u}) {
        const auto g_f = capture::apply_stuck_bit(
            ideal_golden, {.bit_index = bit, .stuck_value = true});
        const auto d_f = capture::apply_stuck_bit(
            ideal_defect, {.bit_index = bit, .stuck_value = true});
        f_table.add_row({"bit " + std::to_string(bit) + " stuck-1",
                         format_double(core::ndf(g_f, ideal_golden), 4),
                         format_double(core::ndf(d_f, g_f), 4)});
    }
    {
        const auto g_f = capture::apply_swapped_bits(ideal_golden, 1, 4);
        const auto d_f = capture::apply_swapped_bits(ideal_defect, 1, 4);
        f_table.add_row({"bus lines 1<->4 swapped",
                         format_double(core::ndf(g_f, ideal_golden), 4),
                         format_double(core::ndf(d_f, g_f), 4)});
    }
    f_table.print(out);

    report::PaperComparison cmp("Fig. 5 capture parameters (ablation)");
    cmp.add("quantisation", "asynchronous capture at master clock",
            "error falls ~1/f_clk; < 1e-3 NDF above ~5 MHz", "");
    cmp.add("counter width m", "m-bit counter holds the interval",
            "m >= 9 bits needed at 10 MHz for this CUT",
            "longest dwell ~40 us = 400 ticks");
    cmp.print(out);
}

void BM_CaptureAtClock(benchmark::State& state) {
    core::PipelineOptions opts;
    opts.samples_per_period = 8192;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), opts);
    const auto ideal =
        pipe.chronogram(filter::BehaviouralCut(core::paper_biquad()));
    const capture::CaptureUnit unit(
        {.f_clk = static_cast<double>(state.range(0)) * 1e6, .counter_bits = 32});
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.capture(ideal));
}
BENCHMARK(BM_CaptureAtClock)->Arg(1)->Arg(10)->Arg(100);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
