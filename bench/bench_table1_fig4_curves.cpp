// Reproduces TABLE I + Fig. 4: the six monitor control curves, and the
// paper's Monte-Carlo validation (measured curves inside the predicted
// process+mismatch envelope). Then benchmarks boundary evaluation.

#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "common/math_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "mc/monte_carlo.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

void print_table1(std::ostream& out) {
    out << "=== TABLE I: input configuration of the six monitors ===\n";
    TextTable t({"curve", "W(M1) nm", "W(M2) nm", "W(M3) nm", "W(M4) nm", "V1",
                 "V2", "V3", "V4"});
    auto leg_str = [](const monitor::MonitorLeg& leg) {
        switch (leg.input) {
        case monitor::MonitorInput::x_axis:
            return std::string("X axis");
        case monitor::MonitorInput::y_axis:
            return std::string("Y axis");
        case monitor::MonitorInput::dc:
            return format_double(leg.dc_level, 3) + " V";
        }
        return std::string("?");
    };
    for (int row = 1; row <= 6; ++row) {
        const auto cfg = monitor::table1_config(row);
        t.add_row({std::to_string(row),
                   format_double(cfg.legs[0].width * 1e9, 4),
                   format_double(cfg.legs[1].width * 1e9, 4),
                   format_double(cfg.legs[2].width * 1e9, 4),
                   format_double(cfg.legs[3].width * 1e9, 4), leg_str(cfg.legs[0]),
                   leg_str(cfg.legs[1]), leg_str(cfg.legs[2]), leg_str(cfg.legs[3])});
    }
    t.print(out);
}

/// Curve of one Table I monitor on a grid (NaN where no crossing).
/// Curves 1 and 3-6 are functions y(x); curve 2 is near-vertical and is
/// probed as x(y) instead (the grid then parameterises y).
std::vector<double> curve_on_grid(const monitor::MonitorConfig& cfg,
                                  const std::vector<double>& grid,
                                  bool inverted = false) {
    const monitor::MosCurrentBoundary b(cfg);
    std::vector<double> out(grid.size(), std::nan(""));
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const double t = grid[i];
        if (!inverted) {
            const auto pts = trace_boundary(b, t, t + 1e-6, 2, 0.0, 1.0);
            if (!pts.empty())
                out[i] = pts.front().y;
        } else {
            // Root of h(., y = t) in x by scanning the transposed view.
            struct Swap final : monitor::Boundary {
                const monitor::Boundary* inner;
                double h(double x, double y) const override {
                    return inner->h(y, x);
                }
                std::unique_ptr<monitor::Boundary> clone() const override {
                    return std::make_unique<Swap>(*this);
                }
            };
            Swap sw;
            sw.inner = &b;
            const auto pts = trace_boundary(sw, t, t + 1e-6, 2, 0.0, 1.0);
            if (!pts.empty())
                out[i] = pts.front().y; // this is x of the original curve
        }
    }
    return out;
}

void print_reproduction(std::ostream& out) {
    print_table1(out);

    report::Figure fig("fig4", "Monitor control curves (Table I configurations)",
                       "X (V)", "Y (V)");
    const auto xs = linspace(0.0, 1.0, 81);
    for (int row = 1; row <= 6; ++row) {
        const bool inverted = (row == 2);
        const auto ys = curve_on_grid(monitor::table1_config(row), xs, inverted);
        report::Series s;
        s.name = "curve" + std::to_string(row);
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (!std::isnan(ys[i])) {
                // inverted: grid parameterises y and the value is x.
                s.xs.push_back(inverted ? ys[i] : xs[i]);
                s.ys.push_back(inverted ? xs[i] : ys[i]);
            }
        }
        if (!s.xs.empty())
            fig.add_series(std::move(s));
    }
    fig.print(out);

    // Monte-Carlo envelope (process + mismatch), nominal must lie inside --
    // the paper's validation of its measured curves, with roles swapped.
    // The parallel engine is bit-identical to the serial one at any thread
    // count, so moving off mc::monte_carlo_envelope only buys throughput —
    // which pays for the 3x larger sample count.
    constexpr int kMcSamples = 600;
    out << "=== Fig. 4 Monte-Carlo validation (N = " << kMcSamples
        << ", process + mismatch) ===\n";
    const mc::PelgromModel pelgrom;
    const mc::ProcessVariation process;
    TextTable mc_table({"curve", "nominal inside 5-95% envelope",
                        "envelope width @ x=0.2 (mV)",
                        "envelope width @ x=0.05 (mV)"});
    for (int row = 1; row <= 6; ++row) {
        const bool inverted = (row == 2);
        const auto cfg = monitor::table1_config(row);
        // Probe away from the window edges, where a perturbed curve can
        // leave [0,1]^2 and the one-sided envelope artefacts appear.
        const auto env = mc::monte_carlo_envelope_parallel(
            kMcSamples, 42u + static_cast<std::uint64_t>(row), linspace(0.05, 0.95, 37),
            [&](Rng& rng, const std::vector<double>& grid) {
                return curve_on_grid(
                    monitor::perturb_monitor(cfg, pelgrom, process, rng), grid,
                    inverted);
            });
        const auto nominal = curve_on_grid(cfg, env.xs, inverted);
        auto width_at = [&](double x) -> std::string {
            for (std::size_t i = 0; i < env.xs.size(); ++i) {
                if (std::abs(env.xs[i] - x) < 1e-9) {
                    if (std::isnan(env.p95[i]) || std::isnan(env.p05[i]))
                        return "n/a";
                    return format_double((env.p95[i] - env.p05[i]) * 1e3, 3);
                }
            }
            return "n/a";
        };
        mc_table.add_row({std::to_string(row),
                          env.contains(nominal, 2e-3) ? "yes" : "NO",
                          width_at(0.2), width_at(0.05)});
    }
    mc_table.print(out);

    report::PaperComparison cmp("Table I / Fig. 4");
    cmp.add("curves 1-2", "segments of positive slope", "positive slope",
            "see fig4 series");
    cmp.add("curves 3-5", "segments of negative slope (arcs)", "negative slope",
            "DC level orders the arcs: 0.3 < 0.55 < 0.75");
    cmp.add("curve 6", "45-degree line, distorted at low voltages",
            "diagonal; MC envelope widens at low V",
            "sub-threshold operation dominates mismatch there");
    cmp.add("measured vs MC", "inside predicted MC range", "nominal inside 5-95%",
            "");
    cmp.print(out);
}

void BM_BoundaryEvaluate(benchmark::State& state) {
    const monitor::MosCurrentBoundary b(
        monitor::table1_config(static_cast<int>(state.range(0))));
    double x = 0.1, y = 0.9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.h(x, y));
        x = (x < 0.9) ? x + 0.01 : 0.1;
        y = (y > 0.1) ? y - 0.01 : 0.9;
    }
}
BENCHMARK(BM_BoundaryEvaluate)->Arg(1)->Arg(3)->Arg(6);

void BM_TraceBoundary(benchmark::State& state) {
    const monitor::MosCurrentBoundary b(monitor::table1_config(3));
    for (auto _ : state)
        benchmark::DoNotOptimize(trace_boundary(b, 0.0, 1.0, 64, 0.0, 1.0));
}
BENCHMARK(BM_TraceBoundary);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
