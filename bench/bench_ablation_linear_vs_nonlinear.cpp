// Ablation: the paper motivates nonlinear (current-comparison) boundaries
// as a simplification over classic straight-line X-Y zoning ([12],[13]).
// This bench compares the two banks at equal monitor count: NDF sensitivity
// on the Fig. 8 sweep and a hardware-cost tally. Then benchmarks both
// boundary evaluations head to head.

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "common/table.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "monitor/table1.h"
#include "monitor/zone_map.h"
#include "report/figure.h"

namespace {

using namespace xysig;

void print_reproduction(std::ostream& out) {
    out << "=== [ablationA] Straight-line zoning baseline vs nonlinear "
           "monitors ===\n";

    std::vector<double> devs;
    for (int d = -20; d <= 20; d += 2)
        devs.push_back(d);

    report::Figure fig("ablationA", "NDF vs % defect: nonlinear vs linear bank",
                       "% of defect", "NDF");
    core::SweepShape shape_nl, shape_lin;
    std::size_t zones_nl = 0, zones_lin = 0;
    {
        core::PipelineOptions opts;
        opts.samples_per_period = 4096;
        core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                     core::paper_stimulus(), opts);
        const auto sweep = core::deviation_sweep(pipe, core::paper_biquad(), devs);
        shape_nl = core::analyse_sweep(sweep);
        report::Series s;
        s.name = "nonlinear (paper)";
        for (const auto& p : sweep) {
            s.xs.push_back(p.deviation_percent);
            s.ys.push_back(p.ndf_value);
        }
        fig.add_series(std::move(s));
        zones_nl = monitor::ZoneMap(pipe.bank(), 0, 1, 0, 1, 128).zone_count();
    }
    {
        core::PipelineOptions opts;
        opts.samples_per_period = 4096;
        core::SignaturePipeline pipe(monitor::build_linear_approximation_bank(),
                                     core::paper_stimulus(), opts);
        const auto sweep = core::deviation_sweep(pipe, core::paper_biquad(), devs);
        shape_lin = core::analyse_sweep(sweep);
        report::Series s;
        s.name = "linear baseline";
        for (const auto& p : sweep) {
            s.xs.push_back(p.deviation_percent);
            s.ys.push_back(p.ndf_value);
        }
        fig.add_series(std::move(s));
        zones_lin = monitor::ZoneMap(pipe.bank(), 0, 1, 0, 1, 128).zone_count();
    }
    fig.print(out);

    TextTable t({"metric", "nonlinear (paper)", "linear baseline"});
    t.add_row({"NDF slope per % deviation", format_double(shape_nl.slope_per_percent, 3),
               format_double(shape_lin.slope_per_percent, 3)});
    t.add_row({"sweep linearity r^2", format_double(shape_nl.r_squared, 3),
               format_double(shape_lin.r_squared, 3)});
    t.add_row({"zones in unit window", std::to_string(zones_nl),
               std::to_string(zones_lin)});
    t.add_row({"monitor hardware", "8 MOS transistors (current comparison)",
               "weighted adder (resistors/opamp) + voltage comparator"});
    t.add_row({"extra analog precision parts", "none (ratioed widths)",
               "matched resistor string per line"});
    t.print(out);

    report::PaperComparison cmp("Linear vs nonlinear zoning (ablation)");
    cmp.add("sensitivity", "comparable detection capability expected",
            "similar NDF slope", "both detect the Fig. 8 deviations");
    cmp.add("monitor size", "\"significant reduction in monitor size\"",
            "8T core vs adder+comparator",
            "the paper's 53.54 um^2 core has no passive network");
    cmp.print(out);
}

void BM_NonlinearBoundary(benchmark::State& state) {
    const monitor::MonitorBank bank = monitor::build_table1_bank();
    double x = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bank.code(x, 1.0 - x));
        x = (x < 0.9) ? x + 0.01 : 0.1;
    }
}
BENCHMARK(BM_NonlinearBoundary);

void BM_LinearBoundary(benchmark::State& state) {
    const monitor::MonitorBank bank = monitor::build_linear_approximation_bank();
    double x = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bank.code(x, 1.0 - x));
        x = (x < 0.9) ? x + 0.01 : 0.1;
    }
}
BENCHMARK(BM_LinearBoundary);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
