// Sweep-service scaling report: the sharded SweepService versus the serial
// scratch-path reference, across (shard size x worker count) combinations,
// on a behavioural deviation grid and on the Tow-Thomas SPICE fault
// universe. Every combination is gated on bit-identity with the serial NDFs
// (nonzero exit when any result diverges, so CI can rely on the exit code)
// and the SPICE rows additionally gate on the clone-per-worker contract via
// the Netlist::clone_count() probe.
//
// Flags: --smoke (reduced sizes for CI), --json=PATH (machine-readable
// summary; default bench_sweep_service.json).

#include <bit>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capture/fault_injection.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/table1.h"
#include "server/sweep_service.h"

namespace {

using namespace xysig;

struct Combo {
    std::size_t shard_size;
    unsigned workers;
};

struct Row {
    std::string workload;
    Combo combo{};
    double seconds = 0.0;
    double members_per_s = 0.0;
    double speedup = 1.0;
    bool bit_identical = true;
    std::uint64_t clones = 0;
};

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::bit_cast<std::uint64_t>(a[i]) !=
            std::bit_cast<std::uint64_t>(b[i]))
            return false;
    return true;
}

core::SignaturePipeline make_pipeline(std::size_t spp) {
    core::PipelineOptions opts;
    opts.samples_per_period = spp;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

void write_json(const std::string& path, bool smoke, std::size_t grid_size,
                std::size_t fault_count, const std::vector<Row>& rows,
                bool all_identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"sweep_service\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"grid_members\": " << grid_size << ",\n";
    out << "  \"spice_faults\": " << fault_count << ",\n";
    out << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
        << ",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"workload\": \"" << r.workload << "\", \"shard_size\": "
            << r.combo.shard_size << ", \"workers\": " << r.combo.workers
            << ", \"seconds\": " << format_double(r.seconds, 6)
            << ", \"members_per_s\": " << format_double(r.members_per_s, 6)
            << ", \"speedup\": " << format_double(r.speedup, 4)
            << ", \"netlist_clones\": " << r.clones << ", \"bit_identical\": "
            << (r.bit_identical ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "bench_sweep_service.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }

    const std::size_t grid_size = smoke ? 400 : 4000;
    const std::size_t spp = smoke ? 256 : 1024;
    const std::vector<Combo> combos = {{1, 1}, {16, 2}, {64, 4}, {256, 8}};

    std::cout << "=== [sweep service] sharded sweep vs serial reference, "
              << (smoke ? "smoke" : "full") << " mode ===\n";
    std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency()
              << " (speedup is bounded by physical cores; determinism is not)\n";

    std::vector<Row> rows;
    bool all_identical = true;

    // ------------------------------------------------ behavioural grid
    {
        const filter::Biquad nominal = core::paper_biquad();
        std::vector<double> deviations;
        deviations.reserve(grid_size);
        for (std::size_t i = 0; i < grid_size; ++i)
            deviations.push_back(-20.0 + 40.0 * static_cast<double>(i) /
                                             static_cast<double>(grid_size - 1));

        core::SignaturePipeline serial_pipe = make_pipeline(spp);
        serial_pipe.set_golden(filter::BehaviouralCut(nominal));
        std::vector<double> serial(grid_size);
        const double t_serial = seconds_of([&] {
            core::NdfScratch scratch;
            for (std::size_t i = 0; i < grid_size; ++i) {
                const double frac = deviations[i] / 100.0;
                const filter::BehaviouralCut cut(nominal.with_f0_shift(frac));
                serial[i] = serial_pipe.ndf_of(cut, scratch);
            }
        });
        rows.push_back({"deviation grid", {0, 0}, t_serial,
                        static_cast<double>(grid_size) / t_serial, 1.0, true,
                        0});

        for (const Combo combo : combos) {
            server::SweepServiceOptions sopts;
            sopts.workers = combo.workers;
            sopts.shard_size = combo.shard_size;
            server::SweepService service(make_pipeline(spp), sopts);
            const server::SweepJob job =
                server::SweepJob::deviation_grid(nominal, deviations);
            std::vector<double> streamed;
            streamed.reserve(grid_size);
            const double dt = seconds_of([&] {
                streamed.clear();
                (void)service.run(job, [&](const server::SweepResult& r) {
                    streamed.push_back(r.ndf);
                });
            });
            const bool identical = same_bits(streamed, serial);
            all_identical = all_identical && identical;
            rows.push_back({"deviation grid", combo, dt,
                            static_cast<double>(grid_size) / dt, t_serial / dt,
                            identical, 0});
        }
    }

    // ------------------------------------------------ SPICE fault universe
    std::size_t fault_count = 0;
    {
        const auto circuit = filter::build_tow_thomas(
            filter::TowThomasDesign::from_biquad(core::paper_biquad().design(),
                                                 10e3));
        const core::SpiceObservation obs{circuit.input_source,
                                         circuit.input_node, circuit.lp_node,
                                         /*settle_periods=*/smoke ? 2 : 4};
        capture::FaultUniverseOptions fopts;
        auto faults = capture::enumerate_bridging_faults(circuit.netlist, fopts);
        const auto opens = capture::enumerate_open_faults(circuit.netlist, fopts);
        faults.insert(faults.end(), opens.begin(), opens.end());
        fault_count = faults.size();

        core::SignaturePipeline serial_pipe = make_pipeline(spp);
        serial_pipe.set_golden(filter::SpiceCut(
            std::make_unique<spice::Netlist>(circuit.netlist.clone()),
            obs.input_source, obs.x_node, obs.y_node, obs.settle_periods));
        const auto universe = core::BatchNdfEvaluator::build_fault_universe(
            circuit.netlist, faults, obs);
        std::vector<double> serial(universe.size());
        const double t_serial = seconds_of([&] {
            core::NdfScratch scratch;
            for (std::size_t i = 0; i < universe.size(); ++i) {
                try {
                    serial[i] = serial_pipe.ndf_of(*universe[i], scratch);
                } catch (const NumericError&) {
                    serial[i] = std::numeric_limits<double>::quiet_NaN();
                }
            }
        });
        rows.push_back({"SPICE fault NDF", {0, 0}, t_serial,
                        static_cast<double>(fault_count) / t_serial, 1.0, true,
                        0});

        const auto nominal =
            std::make_shared<spice::Netlist>(circuit.netlist.clone());
        for (const Combo combo : combos) {
            server::SweepServiceOptions sopts;
            sopts.workers = combo.workers;
            sopts.shard_size = combo.shard_size;
            server::SweepService service(make_pipeline(spp), sopts);
            const server::SweepJob job =
                server::SweepJob::fault_universe(nominal, faults, obs);
            std::vector<double> streamed;
            streamed.reserve(fault_count);
            std::uint64_t clones = 0;
            const double dt = seconds_of([&] {
                streamed.clear();
                const auto summary =
                    service.run(job, [&](const server::SweepResult& r) {
                        streamed.push_back(r.ndf);
                    });
                clones = summary.netlist_clones;
            });
            // Gate on bit-identity AND the clone-per-worker contract.
            const bool identical =
                same_bits(streamed, serial) && clones <= combo.workers;
            all_identical = all_identical && identical;
            rows.push_back({"SPICE fault NDF", combo, dt,
                            static_cast<double>(fault_count) / dt,
                            t_serial / dt, identical, clones});
        }
    }

    TextTable t({"workload", "shard", "workers", "time (s)", "members/s",
                 "speedup", "clones", "bit-identical"});
    for (const Row& r : rows) {
        t.add_row({r.workload,
                   r.combo.workers == 0 ? "-" : std::to_string(r.combo.shard_size),
                   r.combo.workers == 0 ? "serial"
                                        : std::to_string(r.combo.workers),
                   format_double(r.seconds, 4), format_double(r.members_per_s, 1),
                   format_double(r.speedup, 2), std::to_string(r.clones),
                   r.combo.workers == 0 ? "-"
                                        : (r.bit_identical ? "yes" : "NO (BUG)")});
    }
    t.print(std::cout);
    if (!all_identical)
        std::cout << "ERROR: sharded sweep diverged from the serial reference "
                     "(determinism bug) or broke the clone-per-worker "
                     "contract\n";

    write_json(json_path, smoke, grid_size, fault_count, rows, all_identical);
    std::cout << "json: " << json_path << "\n";
    return all_identical ? 0 : 1;
}
