// Engine micro-benchmarks: the circuit-simulation substrate (DC, transient,
// AC, MOSFET evaluation) and the comparator netlist, plus the SPICE
// fault-universe scaling report — batch NDF over a bridging/open universe,
// serial vs N worker threads, gated on bit-identity (nonzero exit when any
// parallel result diverges, so CI can rely on the exit code).

#include <bit>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <thread>

#include <benchmark/benchmark.h>

#include "capture/fault_injection.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/comparator_netlist.h"
#include "monitor/table1.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/transient.h"

namespace {

using namespace xysig;

void BM_MosEvaluate(benchmark::State& state) {
    spice::MosParams p;
    p.w = 1.8e-6;
    p.l = 180e-9;
    double vgs = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(spice::mos_evaluate(p, vgs, 0.6));
        vgs = (vgs < 1.1) ? vgs + 0.001 : 0.1;
    }
}
BENCHMARK(BM_MosEvaluate);

void BM_DcOperatingPoint_Comparator(benchmark::State& state) {
    monitor::ComparatorCircuit ckt =
        monitor::build_comparator(monitor::table1_config(3));
    for (auto _ : state)
        benchmark::DoNotOptimize(monitor::comparator_differential(ckt, 0.3, 0.7));
}
BENCHMARK(BM_DcOperatingPoint_Comparator)->Unit(benchmark::kMicrosecond);

void BM_TransientTowThomas(benchmark::State& state) {
    const auto periods = static_cast<int>(state.range(0));
    for (auto _ : state) {
        filter::TowThomasCircuit ckt = filter::build_tow_thomas(
            filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
        ckt.netlist.get<spice::VoltageSource>("Vin").set_waveform(
            core::paper_stimulus());
        spice::TransientOptions opts;
        opts.t_stop = periods * 200e-6;
        opts.dt = 200e-6 / 512;
        benchmark::DoNotOptimize(spice::run_transient(ckt.netlist, opts));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            periods * 512);
}
BENCHMARK(BM_TransientTowThomas)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AcSweepTowThomas(benchmark::State& state) {
    filter::TowThomasCircuit ckt = filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    ckt.netlist.get<spice::VoltageSource>("Vin").set_ac(1.0);
    spice::AcOptions opts;
    opts.f_start = 100.0;
    opts.f_stop = 1e6;
    opts.points_per_decade = 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(spice::run_ac(ckt.netlist, opts));
}
BENCHMARK(BM_AcSweepTowThomas)->Unit(benchmark::kMillisecond);

void BM_NewtonDcLadder(benchmark::State& state) {
    // A deliberately awkward bias point to exercise the convergence ladder.
    monitor::ComparatorCircuit ckt =
        monitor::build_comparator(monitor::table1_config(6));
    for (auto _ : state)
        benchmark::DoNotOptimize(monitor::comparator_differential(ckt, 0.5, 0.5));
}
BENCHMARK(BM_NewtonDcLadder)->Unit(benchmark::kMicrosecond);

// Batch NDF over the Tow-Thomas bridging/open fault universe: serial
// reference vs the batch engine at 1/2/4/8 threads. Returns false when any
// parallel result is not bit-identical to the serial one.
[[nodiscard]] bool print_spice_scaling_report(std::ostream& out) {
    using namespace xysig;

    out << "=== [spice scaling] batch NDF over a bridging/open fault universe "
           "===\n";
    out << "hardware_concurrency: " << std::thread::hardware_concurrency()
        << " (speedup is bounded by physical cores; determinism is not)\n";

    const filter::TowThomasCircuit nominal = filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));

    core::PipelineOptions popts;
    popts.samples_per_period = 1024;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), popts);
    const core::SpiceObservation obs{nominal.input_source, nominal.input_node,
                                     nominal.lp_node, /*settle_periods=*/4};
    pipe.set_golden(filter::SpiceCut(
        std::make_unique<spice::Netlist>(nominal.netlist.clone()),
        obs.input_source, obs.x_node, obs.y_node, obs.settle_periods));

    capture::FaultUniverseOptions fopts;
    auto faults = capture::enumerate_bridging_faults(nominal.netlist, fopts);
    const auto opens = capture::enumerate_open_faults(nominal.netlist, fopts);
    faults.insert(faults.end(), opens.begin(), opens.end());
    const auto universe = core::BatchNdfEvaluator::build_fault_universe(
        nominal.netlist, faults, obs);
    out << "universe: " << faults.size() << " faults ("
        << faults.size() - opens.size() << " bridging, " << opens.size()
        << " open) over '" << nominal.netlist.devices().size()
        << "-device Tow-Thomas'\n";

    // Serial reference: one cut at a time through the scratch path, with the
    // same NaN-on-non-convergence policy the batch engine uses (catastrophic
    // universes legitimately contain unsolvable members).
    std::vector<double> serial(universe.size());
    const double t_serial = seconds_of([&] {
        core::NdfScratch scratch;
        for (std::size_t i = 0; i < universe.size(); ++i) {
            try {
                serial[i] = pipe.ndf_of(*universe[i], scratch);
            } catch (const NumericError&) {
                // Same constant as the batch engine's policy: the identity
                // gate compares bit patterns, so the payloads must match.
                serial[i] = std::numeric_limits<double>::quiet_NaN();
            }
        }
    });

    // Bit-pattern identity: NaNs must match too (operator== can't see that).
    const auto same_bits = [](const std::vector<double>& a,
                              const std::vector<double>& b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i)
            if (std::bit_cast<std::uint64_t>(a[i]) !=
                std::bit_cast<std::uint64_t>(b[i]))
                return false;
        return true;
    };

    bool all_identical = true;
    TextTable t({"workload", "threads", "time (s)", "faults/s", "speedup",
                 "bit-identical"});
    t.add_row({"SPICE fault NDF", "serial", format_double(t_serial, 4),
               format_double(static_cast<double>(universe.size()) / t_serial, 1),
               "1.00", "-"});
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        const core::BatchNdfEvaluator batch(
            pipe, {.threads = threads, .nan_on_numeric_error = true});
        std::vector<double> ndfs;
        const double dt = seconds_of([&] { ndfs = batch.evaluate(universe); });
        const bool identical = same_bits(ndfs, serial);
        all_identical = all_identical && identical;
        t.add_row({"SPICE fault NDF", std::to_string(threads),
                   format_double(dt, 4),
                   format_double(static_cast<double>(universe.size()) / dt, 1),
                   format_double(t_serial / dt, 2),
                   identical ? "yes" : "NO (BUG)"});
    }
    t.print(out);
    if (!all_identical)
        out << "ERROR: parallel SPICE NDFs diverged from serial (determinism "
               "bug)\n";
    return all_identical;
}

} // namespace

int main(int argc, char** argv) {
    const bool identical = print_spice_scaling_report(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return identical ? 0 : 1;
}
