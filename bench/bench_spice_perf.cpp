// Engine micro-benchmarks: the circuit-simulation substrate (DC, transient,
// AC, MOSFET evaluation) and the comparator netlist. No paper figure here —
// this quantifies the substrate the reproduction runs on.

#include <benchmark/benchmark.h>

#include "core/paper_setup.h"
#include "filter/tow_thomas.h"
#include "monitor/comparator_netlist.h"
#include "monitor/table1.h"
#include "spice/ac.h"
#include "spice/dc.h"
#include "spice/elements.h"
#include "spice/transient.h"

namespace {

using namespace xysig;

void BM_MosEvaluate(benchmark::State& state) {
    spice::MosParams p;
    p.w = 1.8e-6;
    p.l = 180e-9;
    double vgs = 0.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(spice::mos_evaluate(p, vgs, 0.6));
        vgs = (vgs < 1.1) ? vgs + 0.001 : 0.1;
    }
}
BENCHMARK(BM_MosEvaluate);

void BM_DcOperatingPoint_Comparator(benchmark::State& state) {
    monitor::ComparatorCircuit ckt =
        monitor::build_comparator(monitor::table1_config(3));
    for (auto _ : state)
        benchmark::DoNotOptimize(monitor::comparator_differential(ckt, 0.3, 0.7));
}
BENCHMARK(BM_DcOperatingPoint_Comparator)->Unit(benchmark::kMicrosecond);

void BM_TransientTowThomas(benchmark::State& state) {
    const auto periods = static_cast<int>(state.range(0));
    for (auto _ : state) {
        filter::TowThomasCircuit ckt = filter::build_tow_thomas(
            filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
        ckt.netlist.get<spice::VoltageSource>("Vin").set_waveform(
            core::paper_stimulus());
        spice::TransientOptions opts;
        opts.t_stop = periods * 200e-6;
        opts.dt = 200e-6 / 512;
        benchmark::DoNotOptimize(spice::run_transient(ckt.netlist, opts));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            periods * 512);
}
BENCHMARK(BM_TransientTowThomas)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_AcSweepTowThomas(benchmark::State& state) {
    filter::TowThomasCircuit ckt = filter::build_tow_thomas(
        filter::TowThomasDesign::from_biquad(core::paper_biquad().design(), 10e3));
    ckt.netlist.get<spice::VoltageSource>("Vin").set_ac(1.0);
    spice::AcOptions opts;
    opts.f_start = 100.0;
    opts.f_stop = 1e6;
    opts.points_per_decade = 20;
    for (auto _ : state)
        benchmark::DoNotOptimize(spice::run_ac(ckt.netlist, opts));
}
BENCHMARK(BM_AcSweepTowThomas)->Unit(benchmark::kMillisecond);

void BM_NewtonDcLadder(benchmark::State& state) {
    // A deliberately awkward bias point to exercise the convergence ladder.
    monitor::ComparatorCircuit ckt =
        monitor::build_comparator(monitor::table1_config(6));
    for (auto _ : state)
        benchmark::DoNotOptimize(monitor::comparator_differential(ckt, 0.5, 0.5));
}
BENCHMARK(BM_NewtonDcLadder)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
