// Fan-out scaling report: the multi-process FanoutDriver versus one
// in-process SweepService, at 1/2/4 partitions, on a behavioural
// deviation grid and on the Tow-Thomas SPICE fault universe. Every row is
// gated on exact per-member identity of the merged stream with the
// single-process reference (hexfloat NDF strings — nonzero exit when any
// member diverges, so CI can rely on the exit code).
//
// Workers default to in-process loopback peers (runs anywhere); pass
// --server=PATH to fan out over real `sweep_server` child processes
// (what the CI smoke does). Speedup is bounded by physical cores —
// determinism is not, which is the point of the gate.
//
// --tcp serves the workers from an in-process TcpListener (each partition
// connects over a real localhost socket, heartbeats on); --chaos appends
// a fault-injection matrix at 4 partitions — disconnect, stall, truncate,
// garbage, delay — each row gated on the merged stream staying
// bit-identical to the single-process reference while the driver recovers
// by re-dispatch (or work-stealing, for the delay straggler).
//
// Flags: --smoke (reduced sizes for CI), --json=PATH (machine-readable
// summary; default bench_fanout.json), --server=PATH, --workers=N (per
// worker peer), --tcp, --chaos.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "common/timing.h"
#include "server/chaos.h"
#include "server/fanout.h"
#include "server/tcp_transport.h"
#include "server/transport.h"
#include "server/wire.h"

namespace {

using namespace xysig;

struct Row {
    std::string workload;
    unsigned partitions = 0; // 0 = single-process reference row
    double seconds = 0.0;
    double members_per_s = 0.0;
    double speedup = 1.0;
    unsigned redispatches = 0;
    unsigned steals = 0;
    bool bit_identical = true;
};

void write_json(const std::string& path, bool smoke,
                const std::string& transport, std::size_t grid_size,
                std::size_t fault_count, const std::vector<Row>& rows,
                bool all_identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"fanout\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"transport\": \"" << transport << "\",\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"grid_members\": " << grid_size << ",\n";
    out << "  \"spice_faults\": " << fault_count << ",\n";
    out << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
        << ",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"workload\": \"" << r.workload
            << "\", \"partitions\": " << r.partitions
            << ", \"seconds\": " << format_double(r.seconds, 6)
            << ", \"members_per_s\": " << format_double(r.members_per_s, 6)
            << ", \"speedup\": " << format_double(r.speedup, 4)
            << ", \"redispatches\": " << r.redispatches
            << ", \"steals\": " << r.steals
            << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    bool tcp = false;
    bool chaos = false;
    std::string json_path = "bench_fanout.json";
    std::string server_path;
    unsigned worker_threads = 2;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--tcp")
            tcp = true;
        else if (arg == "--chaos")
            chaos = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--server=", 0) == 0)
            server_path = arg.substr(9);
        else if (arg.rfind("--workers=", 0) == 0)
            worker_threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    }

    // >= 1200 members even in smoke mode: the acceptance gate's grid size.
    const std::size_t grid_size = smoke ? 1200 : 4000;
    const std::size_t spp = smoke ? 256 : 512;
    const std::vector<unsigned> partition_counts = {1, 2, 4};
    const std::string transport_name =
        tcp ? "tcp" : (server_path.empty() ? "loopback" : "process");

    // --tcp: one in-process accept loop, each partition a real localhost
    // socket with v3 heartbeats flowing.
    std::unique_ptr<server::TcpListener> listener;
    server::FanoutDriver::TransportFactory factory;
    if (tcp) {
        server::TcpListener::Options topts;
        topts.bind_address = "127.0.0.1";
        topts.workers = worker_threads;
        topts.samples_per_period = spp;
        topts.session.heartbeat_seconds = 0.2;
        listener = std::make_unique<server::TcpListener>(topts);
        listener->start();
        const unsigned short port = listener->port();
        factory = [port] {
            return std::make_unique<server::TcpTransport>("127.0.0.1", port);
        };
    } else if (!server_path.empty()) {
        const std::vector<std::string> worker_argv = {
            server_path, "--spp=" + std::to_string(spp),
            "--workers=" + std::to_string(worker_threads)};
        factory = [worker_argv] {
            return std::make_unique<server::ProcessTransport>(worker_argv);
        };
    } else {
        server::LoopbackTransport::Options lopts;
        lopts.workers = worker_threads;
        lopts.samples_per_period = spp;
        factory = [lopts] {
            return std::make_unique<server::LoopbackTransport>(lopts);
        };
    }

    std::cout << "=== [fanout] multi-process merge vs single-process "
                 "SweepService, "
              << (smoke ? "smoke" : "full") << " mode, " << transport_name
              << " transport ===\n";
    std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency()
              << " (speedup is bounded by physical cores; determinism is "
                 "not)\n";

    const std::vector<std::pair<std::string, std::string>> workloads = {
        {"deviation grid",
         R"({"job":"deviations","grid":{"from":-20,"to":20,"count":)" +
             std::to_string(grid_size) + R"(},"emit_signatures":false})"},
        {"SPICE fault NDF",
         R"({"job":"spice_faults","universe":"bridging+open","settle_periods":2,"emit_signatures":false})"},
    };

    std::vector<Row> rows;
    bool all_identical = true;
    std::size_t fault_count = 0;

    for (const auto& [workload, job_line] : workloads) {
        // Single-process reference: one SweepService over the whole
        // universe, exact hexfloat NDF per member.
        server::WireJob wire =
            server::parse_wire_job(server::JsonValue::parse(job_line));
        if (workload == "SPICE fault NDF")
            fault_count = wire.universe_members;
        server::SweepServiceOptions sopts;
        sopts.workers = worker_threads;
        server::SweepService single(server::make_paper_pipeline(spp), sopts);
        std::vector<std::string> reference;
        reference.reserve(wire.universe_members);
        const double t_single = seconds_of([&] {
            (void)single.run(wire.job, [&](const server::SweepResult& r) {
                reference.push_back(format_double_exact(r.ndf));
            });
        });
        rows.push_back({workload, 0, t_single,
                        static_cast<double>(reference.size()) / t_single, 1.0,
                        0, 0, true});

        for (const unsigned partitions : partition_counts) {
            server::FanoutOptions fopts;
            fopts.partitions = partitions;
            if (tcp)
                fopts.read_timeout_seconds = 10.0; // heartbeats keep it safe
            server::FanoutDriver driver(factory, fopts);
            std::vector<std::string> merged;
            merged.reserve(reference.size());
            unsigned redispatches = 0;
            unsigned steals = 0;
            const double dt = seconds_of([&] {
                merged.clear();
                const auto summary = driver.run(
                    job_line, [&](const server::FanoutRecord& r) {
                        merged.push_back(r.ndf_hex);
                    });
                redispatches = summary.redispatches;
                steals = summary.steals;
            });
            bool identical = merged.size() == reference.size();
            if (identical)
                for (std::size_t i = 0; i < reference.size(); ++i)
                    identical = identical && merged[i] == reference[i];
            all_identical = all_identical && identical;
            rows.push_back({workload, partitions, dt,
                            static_cast<double>(reference.size()) / dt,
                            t_single / dt, redispatches, steals, identical});
        }

        // --chaos: every fault mode against the 4-partition fan-out, first
        // transport poisoned, recovery (re-dispatch or steal) must still
        // produce the exact single-process bits.
        if (chaos) {
            const server::ChaosMode modes[] = {
                server::ChaosMode::disconnect, server::ChaosMode::stall,
                server::ChaosMode::truncate, server::ChaosMode::garbage,
                server::ChaosMode::delay};
            // Fire mid-stream of partition 0's range (4 partitions).
            const std::size_t after =
                std::max<std::size_t>(1, wire.universe_members / 4 / 3);
            for (const server::ChaosMode mode : modes) {
                server::ChaosPlan plan;
                plan.mode = mode;
                plan.after_lines = after;
                plan.stall_seconds = 0.0; // a stall that never recovers
                plan.delay_seconds = 0.02;
                server::FanoutOptions fopts;
                fopts.partitions = 4;
                fopts.read_timeout_seconds = 2.0;
                fopts.max_attempts = 4;
                if (mode == server::ChaosMode::delay)
                    fopts.steal_threshold = 4; // rescue the straggler
                server::FanoutDriver driver(
                    server::chaos_factory(factory, plan), fopts);
                std::vector<std::string> merged;
                merged.reserve(reference.size());
                unsigned redispatches = 0;
                unsigned steals = 0;
                bool failed = false;
                const double dt = seconds_of([&] {
                    try {
                        const auto summary = driver.run(
                            job_line, [&](const server::FanoutRecord& r) {
                                merged.push_back(r.ndf_hex);
                            });
                        redispatches = summary.redispatches;
                        steals = summary.steals;
                    } catch (const std::exception& e) {
                        std::cerr << "chaos "
                                  << server::chaos_mode_name(mode)
                                  << " run failed: " << e.what() << "\n";
                        failed = true;
                    }
                });
                bool identical = !failed && merged.size() == reference.size();
                if (identical)
                    for (std::size_t i = 0; i < reference.size(); ++i)
                        identical = identical && merged[i] == reference[i];
                all_identical = all_identical && identical;
                rows.push_back({workload + std::string(" +chaos:") +
                                    server::chaos_mode_name(mode),
                                4, dt,
                                static_cast<double>(reference.size()) / dt,
                                t_single / dt, redispatches, steals,
                                identical});
            }
        }
    }

    TextTable t({"workload", "partitions", "time (s)", "members/s", "speedup",
                 "redispatch", "steals", "bit-identical"});
    for (const Row& r : rows) {
        t.add_row({r.workload,
                   r.partitions == 0 ? "single" : std::to_string(r.partitions),
                   format_double(r.seconds, 4), format_double(r.members_per_s, 1),
                   format_double(r.speedup, 2), std::to_string(r.redispatches),
                   std::to_string(r.steals),
                   r.partitions == 0 ? "-"
                                     : (r.bit_identical ? "yes" : "NO (BUG)")});
    }
    t.print(std::cout);
    if (!all_identical)
        std::cout << "ERROR: the merged fan-out stream diverged from the "
                     "single-process reference (determinism bug)\n";

    write_json(json_path, smoke, transport_name, grid_size, fault_count, rows,
               all_identical);
    std::cout << "json: " << json_path << "\n";
    return all_identical ? 0 : 1;
}
