// Reproduces Fig. 8: normalized discrepancy factor versus % defect in f0
// over -20%..+20%, with the PASS/FAIL tolerance bands. Then benchmarks the
// sweep driver.

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "core/decision.h"
#include "core/paper_setup.h"
#include "core/sweep.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

core::SignaturePipeline make_pipeline(std::size_t samples) {
    core::PipelineOptions opts;
    opts.samples_per_period = samples;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

void print_reproduction(std::ostream& out) {
    out << "=== [fig8] NDF vs f0 deviation, PASS/FAIL bands ===\n";
    core::SignaturePipeline pipe = make_pipeline(8192);

    std::vector<double> devs;
    for (int d = -20; d <= 20; ++d)
        devs.push_back(d);
    const auto sweep = core::deviation_sweep(pipe, core::paper_biquad(), devs);

    report::Figure fig("fig8", "NDF vs % defect in f0", "% of defect", "NDF");
    report::Series s;
    s.name = "NDF";
    for (const auto& p : sweep) {
        s.xs.push_back(p.deviation_percent);
        s.ys.push_back(p.ndf_value);
    }
    fig.add_series(std::move(s));
    fig.print(out);

    const auto shape = core::analyse_sweep(sweep);
    const auto thr10 = core::NdfThreshold::from_sweep(sweep, 10.0);
    const auto thr5 = core::NdfThreshold::from_sweep(sweep, 5.0);

    out << "PASS/FAIL: tolerance +/-10% -> NDF threshold "
        << format_double(thr10.threshold(), 4) << "; tolerance +/-5% -> "
        << format_double(thr5.threshold(), 4) << "\n";
    out << "example decisions at +/-10% band: dev=+3% -> "
        << (thr10.classify(sweep[23].ndf_value) == core::TestOutcome::pass
                ? "PASS"
                : "FAIL")
        << ", dev=+15% -> "
        << (thr10.classify(sweep[35].ndf_value) == core::TestOutcome::pass
                ? "PASS"
                : "FAIL")
        << "\n";

    report::PaperComparison cmp("Fig. 8");
    cmp.add("NDF(+10%)", "0.1021", sweep[30].ndf_value, "");
    cmp.add("NDF(-10%)", "~0.10 (read from Fig. 8)", sweep[10].ndf_value, "");
    cmp.add("NDF(+/-20%) range", "~0.18-0.20 (read from Fig. 8)",
            format_double(sweep[0].ndf_value, 3) + " / " +
                format_double(sweep[40].ndf_value, 3),
            "");
    cmp.add("linearity", "increases almost linearly",
            "r^2 = " + format_double(shape.r_squared, 4), "|dev| linear fit");
    cmp.add("symmetry", "quite symmetrical",
            "asymmetry = " + format_double(shape.asymmetry, 3),
            "mean |NDF(+d)-NDF(-d)| / (2 mean NDF)");
    cmp.add("slope", "~0.01 NDF per %",
            format_double(shape.slope_per_percent, 3), "");
    cmp.print(out);
}

void BM_DeviationSweep(benchmark::State& state) {
    // range(0): samples per period; range(1): batch-engine thread count.
    core::SignaturePipeline pipe =
        make_pipeline(static_cast<std::size_t>(state.range(0)));
    const std::vector<double> devs = {-10.0, -5.0, 0.0, 5.0, 10.0};
    const auto threads = static_cast<unsigned>(state.range(1));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::deviation_sweep(
            pipe, core::paper_biquad(), devs, core::SweptParameter::f0, threads));
}
BENCHMARK(BM_DeviationSweep)
    ->Args({1024, 1})->Args({4096, 1})->Args({1024, 4})->Args({4096, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SingleNdfPoint(benchmark::State& state) {
    core::SignaturePipeline pipe = make_pipeline(4096);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.07));
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(cut));
}
BENCHMARK(BM_SingleNdfPoint)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
