// Scheduler scaling report: JobScheduler at (queue depth x worker count)
// combinations over distinct behavioural deviation grids, one concurrent
// drainer thread per submitted job. Every combination runs twice: a cold
// pass gated on per-job bit-identity with a serial SweepService::run()
// reference, and a warm resubmit pass that must additionally be served
// entirely by the whole-job result cache (zero worker involvement). Any
// divergence or cache miss on the warm pass makes the exit code nonzero so
// CI can rely on it.
//
// Flags: --smoke (reduced sizes for CI), --json=PATH (machine-readable
// summary; default bench_scheduler.json).

#include <bit>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/paper_setup.h"
#include "monitor/table1.h"
#include "server/json.h"
#include "server/scheduler.h"
#include "server/sweep_service.h"
#include "server/wire.h"

namespace {

using namespace xysig;

struct Combo {
    std::size_t depth;
    unsigned workers;
};

struct Row {
    std::string phase; // "cold" | "warm resubmit"
    Combo combo{};
    double seconds = 0.0;
    double members_per_s = 0.0;
    double speedup = 1.0; // serial reference time of the same jobs / wall
    std::uint64_t cache_hits = 0;
    bool ok = true;
};

bool same_stream(const std::vector<server::SweepResult>& a,
                 const std::vector<server::SweepResult>& b) {
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].member_id != b[i].member_id ||
            std::bit_cast<std::uint64_t>(a[i].ndf) !=
                std::bit_cast<std::uint64_t>(b[i].ndf) ||
            a[i].label != b[i].label)
            return false;
    }
    return true;
}

core::SignaturePipeline make_pipeline(std::size_t spp) {
    core::PipelineOptions opts;
    opts.samples_per_period = spp;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

/// Distinct deviation grid per job index so no two queued jobs share a
/// cache key within a pass; integer endpoints keep the wire line RFC 8259.
server::WireJob grid_job(std::size_t index, std::size_t members) {
    const std::string span = std::to_string(20 + index);
    const std::string line = "{\"id\":\"grid-" + std::to_string(index) +
                             "\",\"job\":\"deviations\",\"grid\":{\"from\":-" +
                             span + ",\"to\":" + span +
                             ",\"count\":" + std::to_string(members) + "}}";
    return server::parse_wire_job(server::JsonValue::parse(line));
}

void write_json(const std::string& path, bool smoke, std::size_t members,
                const std::vector<Row>& rows, bool all_ok) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"scheduler\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
        << ",\n";
    out << "  \"members_per_job\": " << members << ",\n";
    out << "  \"all_ok\": " << (all_ok ? "true" : "false") << ",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"phase\": \"" << r.phase
            << "\", \"queue_depth\": " << r.combo.depth
            << ", \"workers\": " << r.combo.workers
            << ", \"seconds\": " << format_double(r.seconds, 6)
            << ", \"members_per_s\": " << format_double(r.members_per_s, 6)
            << ", \"speedup\": " << format_double(r.speedup, 4)
            << ", \"cache_hits\": " << r.cache_hits
            << ", \"bit_identical\": " << (r.ok ? "true" : "false") << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "bench_scheduler.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }

    const std::size_t members = smoke ? 48 : 240;
    const std::size_t spp = smoke ? 256 : 1024;
    const std::vector<std::size_t> depths = {1, 2, 4, 8};
    const std::vector<unsigned> worker_counts = {1, 2, 4};
    const std::size_t max_depth = depths.back();

    std::cout << "=== [scheduler] queue depth x workers vs serial run(), "
              << (smoke ? "smoke" : "full") << " mode ===\n";
    std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency()
              << " (speedup is bounded by physical cores; determinism is "
                 "not)\n";

    // Serial references, one per distinct grid, through a plain
    // single-worker service — the stream every scheduled variant must
    // reproduce bit for bit.
    server::SweepService ref_service(make_pipeline(spp),
                                     {.workers = 1, .shard_size = 16});
    std::vector<server::WireJob> jobs;
    std::vector<std::vector<server::SweepResult>> refs;
    std::vector<double> serial_seconds;
    for (std::size_t j = 0; j < max_depth; ++j) {
        jobs.push_back(grid_job(j, members));
        std::vector<server::SweepResult> ref;
        ref.reserve(members);
        const double dt = seconds_of([&] {
            (void)ref_service.run(
                jobs[j].job, [&](const server::SweepResult& r) { ref.push_back(r); });
        });
        refs.push_back(std::move(ref));
        serial_seconds.push_back(dt);
    }

    std::vector<Row> rows;
    bool all_ok = true;
    for (const unsigned workers : worker_counts) {
        for (const std::size_t depth : depths) {
            server::SweepService service(make_pipeline(spp),
                                         {.workers = workers, .shard_size = 16});
            server::JobScheduler sched(service);
            double serial_total = 0.0;
            for (std::size_t d = 0; d < depth; ++d)
                serial_total += serial_seconds[d];

            for (int pass = 0; pass < 2; ++pass) {
                std::vector<std::vector<server::SweepResult>> streams(depth);
                std::vector<server::JobHandle> handles;
                handles.reserve(depth);
                std::vector<std::thread> drainers;
                drainers.reserve(depth);
                const double dt = seconds_of([&] {
                    for (std::size_t d = 0; d < depth; ++d)
                        handles.push_back(sched.submit(jobs[d]));
                    for (std::size_t d = 0; d < depth; ++d)
                        drainers.emplace_back([&, d] {
                            server::SweepResult r;
                            while (handles[d].next(r))
                                streams[d].push_back(r);
                        });
                    for (std::thread& t : drainers)
                        t.join();
                });

                std::uint64_t cached = 0;
                bool ok = true;
                for (std::size_t d = 0; d < depth; ++d) {
                    ok = ok && same_stream(streams[d], refs[d]);
                    if (handles[d].outcome().from_cache)
                        ++cached;
                }
                // The cold pass runs distinct grids (no hits possible); the
                // warm pass must come entirely out of the whole-job cache.
                ok = ok && (pass == 0 ? cached == 0 : cached == depth);
                all_ok = all_ok && ok;
                const double total =
                    static_cast<double>(depth) * static_cast<double>(members);
                rows.push_back({pass == 0 ? "cold" : "warm resubmit",
                                {depth, workers}, dt, total / dt,
                                serial_total / dt, cached, ok});
            }
        }
    }

    TextTable t({"phase", "queue depth", "workers", "time (s)", "members/s",
                 "speedup", "cache hits", "ok"});
    for (const Row& r : rows) {
        t.add_row({r.phase, std::to_string(r.combo.depth),
                   std::to_string(r.combo.workers), format_double(r.seconds, 4),
                   format_double(r.members_per_s, 1),
                   format_double(r.speedup, 2), std::to_string(r.cache_hits),
                   r.ok ? "yes" : "NO (BUG)"});
    }
    t.print(std::cout);
    if (!all_ok)
        std::cout << "ERROR: a scheduled stream diverged from the serial "
                     "reference or a warm resubmit missed the job cache\n";

    write_json(json_path, smoke, members, rows, all_ok);
    std::cout << "json: " << json_path << "\n";
    return all_ok ? 0 : 1;
}
