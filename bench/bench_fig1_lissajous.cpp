// Reproduces Fig. 1: Lissajous composition of the multitone input and the
// Biquad low-pass output — nominal shape vs +10% natural-frequency shift.
// Then benchmarks the CUT response kernels.

#include <iostream>

#include <benchmark/benchmark.h>

#include "core/paper_setup.h"
#include "filter/cut.h"
#include "report/figure.h"

namespace {

using namespace xysig;

report::Series lissajous_series(const std::string& name, double f0_shift,
                                std::size_t n) {
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(f0_shift));
    const XyTrace tr = cut.respond(core::paper_stimulus(), n);
    report::Series s;
    s.name = name;
    s.xs.assign(tr.x().samples().begin(), tr.x().samples().end());
    s.ys.assign(tr.y().samples().begin(), tr.y().samples().end());
    return s;
}

void print_reproduction(std::ostream& out) {
    report::Figure fig("fig1", "Lissajous composition: golden vs +10% f0 shift",
                       "Vin (V)", "Vout (V)");
    fig.add_series(lissajous_series("golden", 0.0, 512));
    fig.add_series(lissajous_series("f0+10%", 0.10, 512));
    fig.print(out);

    report::PaperComparison cmp("Fig. 1");
    cmp.add("trace", "closed multitone Lissajous in [0,1]V^2", "same",
            "two-tone 5/15 kHz stimulus");
    cmp.add("defective trace", "visibly deformed at +10% f0", "deformed",
            "see glyph '2' vs '1' above");
    cmp.print(out);
}

void BM_BehaviouralCutRespond(benchmark::State& state) {
    const filter::BehaviouralCut cut(core::paper_biquad());
    const MultitoneWaveform stim = core::paper_stimulus();
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cut.respond(stim, n));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BehaviouralCutRespond)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SteadyStateOutput(benchmark::State& state) {
    const filter::Biquad bq = core::paper_biquad();
    const MultitoneWaveform stim = core::paper_stimulus();
    for (auto _ : state)
        benchmark::DoNotOptimize(bq.steady_state_output(stim));
}
BENCHMARK(BM_SteadyStateOutput);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
