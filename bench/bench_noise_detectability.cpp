// Reproduces the Section IV-C noise study: with null-mean white noise of
// 3*sigma = 15 mV on the observed signals, f0 deviations down to 1% are
// detected. Then benchmarks the noisy pipeline.

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "common/table.h"
#include "core/detectability.h"
#include "core/paper_setup.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

void print_reproduction(std::ostream& out) {
    out << "=== [sec4c] Noise detectability (3*sigma = 15 mV white noise) ===\n";
    core::PipelineOptions popts;
    popts.samples_per_period = 4096;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), popts);

    core::DetectabilityOptions opts;
    opts.trials = 20;
    opts.noise_sigma = 0.005;
    opts.periods_averaged = 16;
    opts.threads = 0; // parallel trials; results identical to serial
    const std::vector<double> devs = {-5.0, -2.0, -1.0, -0.5, 0.5, 1.0, 2.0, 5.0};
    const std::uint64_t seed = 20100308; // DATE 2010 vintage
    const auto study =
        core::noise_detectability(pipe, core::paper_biquad(), devs, opts, seed);

    out << "seed: " << seed << ", trials: " << opts.trials
        << " (parallel, bit-identical to serial)"
        << ", periods averaged per capture: " << opts.periods_averaged << "\n";
    out << "noise floor: mean NDF = " << format_double(study.noise_floor_mean, 4)
        << ", decision threshold (p99) = " << format_double(study.threshold, 4)
        << "\n";

    TextTable t({"deviation %", "NDF mean", "NDF min", "NDF max",
                 "detection rate", "detected"});
    for (const auto& p : study.points) {
        t.add_row({format_double(p.deviation_percent, 3),
                   format_double(p.ndf_mean, 4), format_double(p.ndf_min, 4),
                   format_double(p.ndf_max, 4),
                   format_double(p.detection_rate, 3),
                   p.detected ? "yes" : "no"});
    }
    t.print(out);

    report::PaperComparison cmp("Section IV-C noise claim");
    cmp.add("noise", "white, null mean, 3*sigma = 0.015 V", "same", "");
    cmp.add("minimum detected |deviation|", "1%",
            format_double(study.minimum_detectable(), 3) + "%",
            "multi-period capture, see DESIGN.md");
    cmp.print(out);
}

void BM_NoisyNdf(benchmark::State& state) {
    core::PipelineOptions popts;
    popts.samples_per_period = static_cast<std::size_t>(state.range(0));
    popts.noise_sigma = 0.005;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), popts);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.01));
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(cut, &rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoisyNdf)->Arg(2048)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_NoisyNdfScratch(benchmark::State& state) {
    // Same as BM_NoisyNdf but through the buffer-reusing scratch path the
    // batch engine uses; the delta is the trace (re)allocation cost.
    core::PipelineOptions popts;
    popts.samples_per_period = static_cast<std::size_t>(state.range(0));
    popts.noise_sigma = 0.005;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), popts);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.01));
    Rng rng(1);
    core::NdfScratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(cut, scratch, &rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NoisyNdfScratch)->Arg(2048)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_DetectabilityStudy(benchmark::State& state) {
    // The full Section IV-C study (noise floor + all deviation points)
    // through the parallel Monte-Carlo engine; range(0) is the thread count.
    core::PipelineOptions popts;
    popts.samples_per_period = 1024;
    core::SignaturePipeline pipe(monitor::build_table1_bank(),
                                 core::paper_stimulus(), popts);
    core::DetectabilityOptions opts;
    opts.trials = 8;
    opts.floor_trials = 16;
    opts.periods_averaged = 4;
    opts.threads = static_cast<unsigned>(state.range(0));
    const std::vector<double> devs = {-2.0, -1.0, 1.0, 2.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::noise_detectability(
            pipe, core::paper_biquad(), devs, opts, 20100308));
}
BENCHMARK(BM_DetectabilityStudy)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
