// Serial-vs-parallel scaling of the batch evaluation engine: batch NDF of a
// fault universe and the Monte-Carlo envelope, at 1/2/4/8 worker threads.
// Prints a throughput table (with speedup over serial) after verifying that
// every parallel result is bit-identical to the serial one, then runs the
// google-benchmark timers. Speedup tracks physical cores: on a single-core
// CI box the engine degrades gracefully to ~1x, never below.

#include <iostream>
#include <thread>

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "common/table.h"
#include "common/timing.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "mc/monte_carlo.h"
#include "monitor/table1.h"

namespace {

using namespace xysig;

constexpr int kUniverseSize = 96;
constexpr int kEnvelopeSamples = 64;

core::SignaturePipeline make_pipeline(std::size_t samples) {
    core::PipelineOptions opts;
    opts.samples_per_period = samples;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

std::vector<filter::BehaviouralCut> make_universe(int n) {
    std::vector<filter::BehaviouralCut> cuts;
    cuts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const double dev = 0.2 * (i - n / 2) / static_cast<double>(n / 2);
        cuts.emplace_back(core::paper_biquad().with_f0_shift(dev));
    }
    return cuts;
}

// Returns false when any parallel result diverged from the serial one, so
// CI can gate on the exit code, not on grepping the table.
[[nodiscard]] bool print_scaling_report(std::ostream& out) {
    bool all_identical = true;
    out << "=== [scaling] batch NDF + MC envelope, serial vs N threads ===\n";
    out << "hardware_concurrency: " << std::thread::hardware_concurrency()
        << " (speedup is bounded by physical cores; determinism is not)\n";

    core::SignaturePipeline pipe = make_pipeline(4096);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const auto universe = make_universe(kUniverseSize);
    std::vector<const filter::Cut*> raw;
    for (const auto& c : universe)
        raw.push_back(&c);

    // Serial reference: the one-by-one SignaturePipeline::ndf_of loop the
    // batch engine replaces.
    std::vector<double> serial_ndfs(raw.size());
    const double t_serial = seconds_of([&] {
        core::NdfScratch scratch;
        for (std::size_t i = 0; i < raw.size(); ++i)
            serial_ndfs[i] = pipe.ndf_of(*raw[i], scratch);
    });

    TextTable t({"workload", "threads", "time (s)", "items/s", "speedup",
                 "bit-identical"});
    t.add_row({"batch NDF", "serial", format_double(t_serial, 4),
               format_double(kUniverseSize / t_serial, 1), "1.00", "-"});
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        const core::BatchNdfEvaluator batch(pipe, {.threads = threads});
        std::vector<double> ndfs;
        const double dt = seconds_of([&] { ndfs = batch.evaluate(raw); });
        const bool identical = ndfs == serial_ndfs;
        all_identical = all_identical && identical;
        t.add_row({"batch NDF", std::to_string(threads), format_double(dt, 4),
                   format_double(kUniverseSize / dt, 1),
                   format_double(t_serial / dt, 2),
                   identical ? "yes" : "NO (BUG)"});
    }

    // Monte-Carlo envelope of the Fig. 8 curve under mismatch-like f0
    // scatter: one curve per sample over a 9-point deviation grid.
    std::vector<double> grid;
    for (int d = -20; d <= 20; d += 5)
        grid.push_back(d);
    const auto curve_fn = [&](Rng& rng, const std::vector<double>& xs) {
        const double scatter = rng.normal(0.0, 0.02);
        std::vector<double> ys;
        ys.reserve(xs.size());
        core::NdfScratch scratch;
        for (const double d : xs) {
            const filter::BehaviouralCut cut(
                core::paper_biquad().with_f0_shift(d / 100.0 + scatter));
            ys.push_back(pipe.ndf_of(cut, scratch));
        }
        return ys;
    };
    mc::CurveEnvelope env_serial;
    const double t_env_serial = seconds_of([&] {
        env_serial =
            mc::monte_carlo_envelope(kEnvelopeSamples, 20100308, grid, curve_fn);
    });
    t.add_row({"MC envelope", "serial", format_double(t_env_serial, 4),
               format_double(kEnvelopeSamples / t_env_serial, 1), "1.00", "-"});
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        mc::CurveEnvelope env;
        const double dt = seconds_of([&] {
            env = mc::monte_carlo_envelope_parallel(kEnvelopeSamples, 20100308,
                                                    grid, curve_fn, threads);
        });
        const bool identical = env.p05 == env_serial.p05 &&
                               env.p50 == env_serial.p50 &&
                               env.p95 == env_serial.p95 &&
                               env.lo == env_serial.lo && env.hi == env_serial.hi;
        all_identical = all_identical && identical;
        t.add_row({"MC envelope", std::to_string(threads), format_double(dt, 4),
                   format_double(kEnvelopeSamples / dt, 1),
                   format_double(t_env_serial / dt, 2),
                   identical ? "yes" : "NO (BUG)"});
    }
    t.print(out);
    if (!all_identical)
        out << "ERROR: parallel results diverged from serial (determinism bug)\n";
    return all_identical;
}

void BM_BatchNdfThreads(benchmark::State& state) {
    core::SignaturePipeline pipe = make_pipeline(2048);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const auto universe = make_universe(kUniverseSize);
    std::vector<const filter::Cut*> raw;
    for (const auto& c : universe)
        raw.push_back(&c);
    const core::BatchNdfEvaluator batch(
        pipe, {.threads = static_cast<unsigned>(state.range(0))});
    for (auto _ : state)
        benchmark::DoNotOptimize(batch.evaluate(raw));
    state.SetItemsProcessed(state.iterations() * kUniverseSize);
}
BENCHMARK(BM_BatchNdfThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MonteCarloParallelThreads(benchmark::State& state) {
    core::SignaturePipeline pipe = make_pipeline(2048);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.01));
    core::PipelineOptions noisy_opts = pipe.options();
    noisy_opts.noise_sigma = 0.005;
    core::SignaturePipeline noisy(pipe.bank(), pipe.stimulus(), noisy_opts);
    noisy.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const auto fn = [&](Rng& rng) {
        thread_local core::NdfScratch scratch;
        return noisy.ndf_of(cut, scratch, &rng);
    };
    const auto threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            mc::run_monte_carlo_parallel(64, 20100308, fn, threads));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MonteCarloParallelThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

int main(int argc, char** argv) {
    const bool identical = print_scaling_report(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return identical ? 0 : 1;
}
