// Per-stage throughput of the compiled signature kernels against the
// virtual baseline: stimulus sampling (tone-table kernel vs per-sample
// Waveform::value), zoning (CompiledMonitorBank::codes_into vs
// MonitorBank::code), the fused zoning -> run-length-event path, and the
// end-to-end NDF evaluation (SignaturePipeline scratch path with
// compiled_kernels on vs off, serial and at N batch threads).
//
// Every comparison is gated on bit identity first — the process exits
// nonzero if any kernel result diverges from the virtual path — and the
// numbers are emitted both as a table and as machine-readable JSON
// (--json=PATH, default bench_kernels.json) so the perf trajectory can
// accumulate across commits. `--smoke` runs a reduced-size identity check +
// timing pass and skips the google-benchmark timers (the CI mode).
//
// The workload is the paper-style 8-monitor multitone setup: the six
// Table I MOS comparators plus two straight-line monitors, driven by the
// two-tone Fig. 1 stimulus through the reference Biquad.

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "capture/chronogram.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "kernels/compiled_monitor_bank.h"
#include "kernels/compiled_waveform.h"
#include "monitor/table1.h"

namespace {

using namespace xysig;

/// Table I bank + two linear monitors = the 8-monitor benchmark bank.
monitor::MonitorBank make_bench_bank() {
    monitor::MonitorBank bank = monitor::build_table1_bank();
    bank.add(std::make_unique<monitor::LinearBoundary>(1.0, 1.0, -1.1));
    bank.add(std::make_unique<monitor::LinearBoundary>(-1.0, 1.0, -0.1));
    return bank;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Items/second of fn (which processes items_per_call items), repeated
/// until min_seconds of wall clock.
template <typename F>
double rate_of(F&& fn, double items_per_call, double min_seconds) {
    fn(); // warm-up (also populates any lazily sized buffers)
    int reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = seconds_since(t0);
    } while (elapsed < min_seconds);
    return items_per_call * static_cast<double>(reps) / elapsed;
}

struct StageResult {
    std::string name;
    std::string unit;
    unsigned threads;
    double virtual_rate;
    double compiled_rate;
    bool identical;

    [[nodiscard]] double speedup() const { return compiled_rate / virtual_rate; }
};

bool events_equal(const std::vector<capture::CodeEvent>& a,
                  const std::vector<capture::CodeEvent>& b) {
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].t != b[i].t || a[i].code != b[i].code)
            return false;
    return true;
}

void write_json(const std::string& path, bool smoke, std::size_t samples,
                std::size_t universe, const monitor::MonitorBank& bank,
                const kernels::CompiledMonitorBank& compiled,
                const std::vector<StageResult>& stages, bool all_identical) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench_kernels: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"bench_kernels\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"setup\": {\n";
    out << "    \"monitors\": " << bank.size() << ",\n";
    out << "    \"compiled_monitors\": " << compiled.compiled_count() << ",\n";
    out << "    \"fallback_monitors\": " << compiled.fallback_count() << ",\n";
    out << "    \"samples_per_period\": " << samples << ",\n";
    out << "    \"universe_cuts\": " << universe << "\n";
    out << "  },\n";
    out << "  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const StageResult& s = stages[i];
        out << "    {\"name\": \"" << s.name << "\", \"unit\": \"" << s.unit
            << "\", \"threads\": " << s.threads << ", \"virtual\": "
            << format_double(s.virtual_rate, 4) << ", \"compiled\": "
            << format_double(s.compiled_rate, 4) << ", \"speedup\": "
            << format_double(s.speedup(), 3) << ", \"bit_identical\": "
            << (s.identical ? "true" : "false") << "}"
            << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"bit_identical\": " << (all_identical ? "true" : "false") << "\n";
    out << "}\n";
    std::cout << "JSON written to " << path << "\n";
}

[[nodiscard]] bool run_report(std::ostream& out, bool smoke,
                              const std::string& json_path) {
    const std::size_t samples = smoke ? 2048 : 8192;
    const std::size_t universe_size = smoke ? 12 : 48;
    const double min_seconds = smoke ? 0.05 : 0.5;

    out << "=== [kernels] compiled vs virtual hot path, "
        << (smoke ? "smoke" : "full") << " mode ===\n";

    const monitor::MonitorBank bank = make_bench_bank();
    const auto compiled_bank = kernels::CompiledMonitorBank::compile(bank);
    const MultitoneWaveform stimulus = core::paper_stimulus();
    out << "bank: " << bank.size() << " monitors ("
        << compiled_bank.compiled_count() << " compiled, "
        << compiled_bank.fallback_count() << " fallback), stimulus: "
        << stimulus.tones().size() << " tones, " << samples
        << " samples/period, " << universe_size << " CUTs\n";

    std::vector<StageResult> stages;

    // --- Stage 1: stimulus sampling ------------------------------------
    {
        const double period = stimulus.period();
        const double dt = period / static_cast<double>(samples);
        std::vector<double> virt(samples);
        std::vector<double> kern;
        const auto cw = kernels::CompiledWaveform::compile(stimulus);
        const Waveform& w = stimulus; // force the virtual dispatch baseline
        const double v_rate = rate_of(
            [&] {
                for (std::size_t i = 0; i < samples; ++i)
                    virt[i] = w.value(static_cast<double>(i) * dt);
                benchmark::DoNotOptimize(virt.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                cw->sample_into(0.0, period, samples, kern);
                benchmark::DoNotOptimize(kern.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({"sampling", "samples/s", 1, v_rate, k_rate,
                          virt == kern});
    }

    // --- Trace shared by the zoning / encode stages --------------------
    const filter::BehaviouralCut golden_cut(core::paper_biquad());
    std::vector<double> xs;
    std::vector<double> ys;
    double trace_dt = 0.0;
    golden_cut.respond_into(stimulus, samples, xs, ys, trace_dt);

    // --- Stage 2: zoning (per-sample code) ------------------------------
    {
        std::vector<unsigned> virt(samples);
        std::vector<unsigned> kern;
        const double v_rate = rate_of(
            [&] {
                for (std::size_t i = 0; i < samples; ++i)
                    virt[i] = bank.code(xs[i], ys[i]);
                benchmark::DoNotOptimize(virt.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                compiled_bank.codes_into(xs, ys, kern);
                benchmark::DoNotOptimize(kern.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({"zoning", "samples/s", 1, v_rate, k_rate,
                          virt == kern});
    }

    // --- Stage 3: fused zoning + run-length events ----------------------
    {
        std::vector<capture::CodeEvent> virt;
        std::vector<capture::CodeEvent> kern;
        std::vector<unsigned> codes;
        const double v_rate = rate_of(
            [&] {
                capture::Chronogram::encode_events(xs, ys, trace_dt, bank, virt);
                benchmark::DoNotOptimize(virt.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                compiled_bank.codes_into(xs, ys, codes);
                capture::Chronogram::encode_codes(codes, trace_dt, kern);
                benchmark::DoNotOptimize(kern.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({"zoning+events", "samples/s", 1, v_rate, k_rate,
                          events_equal(virt, kern)});
    }

    // --- Stage 4: fused end-to-end NDF (serial, then N threads) ---------
    {
        core::PipelineOptions virt_opts;
        virt_opts.samples_per_period = samples;
        virt_opts.compiled_kernels = false;
        core::PipelineOptions kern_opts = virt_opts;
        kern_opts.compiled_kernels = true;
        core::SignaturePipeline virt_pipe(make_bench_bank(), stimulus, virt_opts);
        core::SignaturePipeline kern_pipe(make_bench_bank(), stimulus, kern_opts);
        virt_pipe.set_golden(golden_cut);
        kern_pipe.set_golden(golden_cut);

        std::vector<filter::BehaviouralCut> universe;
        universe.reserve(universe_size);
        for (std::size_t i = 0; i < universe_size; ++i) {
            const double half = static_cast<double>(universe_size) / 2.0;
            const double dev = 0.2 * (static_cast<double>(i) - half) / half;
            universe.emplace_back(core::paper_biquad().with_f0_shift(dev));
        }
        std::vector<const filter::Cut*> raw;
        for (const auto& c : universe)
            raw.push_back(&c);

        std::vector<double> ndf_virt(raw.size());
        std::vector<double> ndf_kern(raw.size());
        const double v_rate = rate_of(
            [&] {
                core::NdfScratch scratch;
                for (std::size_t i = 0; i < raw.size(); ++i)
                    ndf_virt[i] = virt_pipe.ndf_of(*raw[i], scratch);
            },
            static_cast<double>(universe_size), min_seconds);
        const double k_rate = rate_of(
            [&] {
                core::NdfScratch scratch;
                for (std::size_t i = 0; i < raw.size(); ++i)
                    ndf_kern[i] = kern_pipe.ndf_of(*raw[i], scratch);
            },
            static_cast<double>(universe_size), min_seconds);
        stages.push_back({"fused ndf", "cuts/s", 1, v_rate, k_rate,
                          ndf_virt == ndf_kern});

        // Batch engine at N threads on top of the compiled kernels: thread
        // scaling multiplies the single-core kernel win.
        const unsigned n_threads = default_thread_count();
        const core::BatchNdfEvaluator batch_virt(virt_pipe, {.threads = n_threads});
        const core::BatchNdfEvaluator batch_kern(kern_pipe, {.threads = n_threads});
        std::vector<double> batch_v;
        std::vector<double> batch_k;
        const double bv_rate = rate_of(
            [&] { batch_v = batch_virt.evaluate(raw); },
            static_cast<double>(universe_size), min_seconds);
        const double bk_rate = rate_of(
            [&] { batch_k = batch_kern.evaluate(raw); },
            static_cast<double>(universe_size), min_seconds);
        stages.push_back({"fused ndf", "cuts/s", n_threads, bv_rate, bk_rate,
                          batch_v == ndf_virt && batch_k == ndf_virt});
    }

    bool all_identical = true;
    TextTable t({"stage", "threads", "virtual", "compiled", "unit", "speedup",
                 "bit-identical"});
    for (const StageResult& s : stages) {
        all_identical = all_identical && s.identical;
        t.add_row({s.name, std::to_string(s.threads),
                   format_double(s.virtual_rate, 4),
                   format_double(s.compiled_rate, 4), s.unit,
                   format_double(s.speedup(), 2),
                   s.identical ? "yes" : "NO (BUG)"});
    }
    t.print(out);
    if (!all_identical)
        out << "ERROR: a compiled kernel diverged from the virtual path\n";

    write_json(json_path, smoke, samples, universe_size, bank, compiled_bank,
               stages, all_identical);
    return all_identical;
}

// --- google-benchmark timers (full mode only) ---------------------------

void BM_ZoningVirtual(benchmark::State& state) {
    const monitor::MonitorBank bank = make_bench_bank();
    std::vector<double> xs;
    std::vector<double> ys;
    double dt = 0.0;
    filter::BehaviouralCut(core::paper_biquad())
        .respond_into(core::paper_stimulus(), 4096, xs, ys, dt);
    std::vector<unsigned> codes(xs.size());
    for (auto _ : state) {
        for (std::size_t i = 0; i < xs.size(); ++i)
            codes[i] = bank.code(xs[i], ys[i]);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_ZoningVirtual)->Unit(benchmark::kMillisecond);

void BM_ZoningCompiled(benchmark::State& state) {
    const auto compiled = kernels::CompiledMonitorBank::compile(make_bench_bank());
    std::vector<double> xs;
    std::vector<double> ys;
    double dt = 0.0;
    filter::BehaviouralCut(core::paper_biquad())
        .respond_into(core::paper_stimulus(), 4096, xs, ys, dt);
    std::vector<unsigned> codes;
    for (auto _ : state) {
        compiled.codes_into(xs, ys, codes);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_ZoningCompiled)->Unit(benchmark::kMillisecond);

void BM_FusedNdf(benchmark::State& state) {
    core::PipelineOptions opts;
    opts.samples_per_period = 4096;
    opts.compiled_kernels = state.range(0) != 0;
    core::SignaturePipeline pipe(make_bench_bank(), core::paper_stimulus(), opts);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.1));
    core::NdfScratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(cut, scratch));
}
BENCHMARK(BM_FusedNdf)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "bench_kernels.json";
    std::vector<char*> bench_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            bench_args.push_back(argv[i]);
    }
    const bool identical = run_report(std::cout, smoke, json_path);
    if (!smoke) {
        int bench_argc = static_cast<int>(bench_args.size());
        benchmark::Initialize(&bench_argc, bench_args.data());
        benchmark::RunSpecifiedBenchmarks();
    }
    return identical ? 0 : 1;
}
