// Per-stage throughput of the compiled signature kernels against the
// virtual baseline: stimulus sampling (tone-table kernel vs per-sample
// Waveform::value), zoning (CompiledMonitorBank::codes_into vs
// MonitorBank::code), the fused zoning -> run-length-event path, the
// end-to-end NDF evaluation (SignaturePipeline scratch path with
// compiled_kernels on vs off, serial and at N batch threads), and the
// opt-in fast_math layer: the vecmath sin kernel vs libm, fast multitone
// sampling vs the exact kernel, the stimulus trace cache vs resampling,
// and the fused NDF path with fast_math on.
//
// Every comparison carries a gate — bit identity for the exact kernels,
// the documented 2-ULP bound for the vecmath rows, a single-sampling
// probe for the trace cache — and the process exits nonzero if any gate
// fails. The numbers are emitted both as a table and as machine-readable
// JSON (--json=PATH, default bench_kernels.json; CI uploads it as
// BENCH_kernels.json) so the perf trajectory can accumulate across
// commits. `--smoke` runs a reduced-size gate check + timing pass and
// skips the google-benchmark timers (the CI mode).
//
// The workload is the paper-style 8-monitor multitone setup: the six
// Table I MOS comparators plus two straight-line monitors, driven by the
// two-tone Fig. 1 stimulus through the reference Biquad.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "capture/chronogram.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/batch_ndf.h"
#include "core/paper_setup.h"
#include "core/trace_cache.h"
#include "kernels/compiled_monitor_bank.h"
#include "kernels/compiled_waveform.h"
#include "kernels/vecmath.h"
#include "monitor/table1.h"
#include "signal/sample_mode.h"

namespace {

using namespace xysig;

/// Table I bank + two linear monitors = the 8-monitor benchmark bank.
monitor::MonitorBank make_bench_bank() {
    monitor::MonitorBank bank = monitor::build_table1_bank();
    bank.add(std::make_unique<monitor::LinearBoundary>(1.0, 1.0, -1.1));
    bank.add(std::make_unique<monitor::LinearBoundary>(-1.0, 1.0, -0.1));
    return bank;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Items/second of fn (which processes items_per_call items), repeated
/// until min_seconds of wall clock.
template <typename F>
double rate_of(F&& fn, double items_per_call, double min_seconds) {
    fn(); // warm-up (also populates any lazily sized buffers)
    int reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        fn();
        ++reps;
        elapsed = seconds_since(t0);
    } while (elapsed < min_seconds);
    return items_per_call * static_cast<double>(reps) / elapsed;
}

struct StageResult {
    std::string name;
    std::string unit;
    unsigned threads = 1;
    double virtual_rate = 0.0;  ///< baseline (virtual / exact / uncached)
    double compiled_rate = 0.0; ///< candidate (compiled / fast / cached)
    /// What correctness check gates this row ("bit" = bit identity; the
    /// fast_math rows carry their documented tolerance instead).
    std::string gate = "bit";
    bool passed = false;
    /// Worst observed gate measure (ULP distance for the ULP rows, NDF
    /// delta for the fused row, 0 for bit rows).
    double measure = 0.0;

    [[nodiscard]] double speedup() const { return compiled_rate / virtual_rate; }
    [[nodiscard]] bool bit_gate() const { return gate == "bit"; }
};

bool events_equal(const std::vector<capture::CodeEvent>& a,
                  const std::vector<capture::CodeEvent>& b) {
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].t != b[i].t || a[i].code != b[i].code)
            return false;
    return true;
}

void write_json(const std::string& path, bool smoke, std::size_t samples,
                std::size_t universe, const monitor::MonitorBank& bank,
                const kernels::CompiledMonitorBank& compiled,
                const std::vector<StageResult>& stages, bool all_identical,
                bool all_passed) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "bench_kernels: cannot write " << path << "\n";
        return;
    }
    out << "{\n";
    out << "  \"bench\": \"bench_kernels\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"setup\": {\n";
    out << "    \"monitors\": " << bank.size() << ",\n";
    out << "    \"compiled_monitors\": " << compiled.compiled_count() << ",\n";
    out << "    \"fallback_monitors\": " << compiled.fallback_count() << ",\n";
    out << "    \"samples_per_period\": " << samples << ",\n";
    out << "    \"universe_cuts\": " << universe << "\n";
    out << "  },\n";
    out << "  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const StageResult& s = stages[i];
        out << "    {\"name\": \"" << s.name << "\", \"unit\": \"" << s.unit
            << "\", \"threads\": " << s.threads << ", \"virtual\": "
            << format_double(s.virtual_rate, 4) << ", \"compiled\": "
            << format_double(s.compiled_rate, 4) << ", \"speedup\": "
            << format_double(s.speedup(), 3) << ", \"gate\": \"" << s.gate
            << "\", \"measure\": " << format_double(s.measure, 4)
            << ", \"passed\": " << (s.passed ? "true" : "false");
        // `bit_identical` is the pre-fast-math field name the trajectory
        // tooling already plots; keep it on the rows where it is true to
        // its name (bit gates) so old readers never see a tolerance row
        // labelled bit-identical.
        if (s.bit_gate())
            out << ", \"bit_identical\": " << (s.passed ? "true" : "false");
        out << "}" << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"bit_identical\": " << (all_identical ? "true" : "false")
        << ",\n";
    out << "  \"gates_passed\": " << (all_passed ? "true" : "false") << "\n";
    out << "}\n";
    std::cout << "JSON written to " << path << "\n";
}

[[nodiscard]] bool run_report(std::ostream& out, bool smoke,
                              const std::string& json_path) {
    const std::size_t samples = smoke ? 2048 : 8192;
    const std::size_t universe_size = smoke ? 12 : 48;
    const double min_seconds = smoke ? 0.05 : 0.5;

    out << "=== [kernels] compiled vs virtual hot path, "
        << (smoke ? "smoke" : "full") << " mode ===\n";

    const monitor::MonitorBank bank = make_bench_bank();
    const auto compiled_bank = kernels::CompiledMonitorBank::compile(bank);
    const MultitoneWaveform stimulus = core::paper_stimulus();
    out << "bank: " << bank.size() << " monitors ("
        << compiled_bank.compiled_count() << " compiled, "
        << compiled_bank.fallback_count() << " fallback), stimulus: "
        << stimulus.tones().size() << " tones, " << samples
        << " samples/period, " << universe_size << " CUTs\n";

    std::vector<StageResult> stages;

    // --- Stage 1: stimulus sampling ------------------------------------
    {
        const double period = stimulus.period();
        const double dt = period / static_cast<double>(samples);
        std::vector<double> virt(samples);
        std::vector<double> kern;
        const auto cw = kernels::CompiledWaveform::compile(stimulus);
        const Waveform& w = stimulus; // force the virtual dispatch baseline
        const double v_rate = rate_of(
            [&] {
                for (std::size_t i = 0; i < samples; ++i)
                    virt[i] = w.value(static_cast<double>(i) * dt);
                benchmark::DoNotOptimize(virt.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                cw->sample_into(0.0, period, samples, kern);
                benchmark::DoNotOptimize(kern.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({.name = "sampling",
                          .unit = "samples/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .passed = virt == kern});
    }

    // --- Trace shared by the zoning / encode stages --------------------
    const filter::BehaviouralCut golden_cut(core::paper_biquad());
    std::vector<double> xs;
    std::vector<double> ys;
    double trace_dt = 0.0;
    golden_cut.respond_into(stimulus, samples, xs, ys, trace_dt);

    // --- Stage 2: zoning (per-sample code) ------------------------------
    {
        std::vector<unsigned> virt(samples);
        std::vector<unsigned> kern;
        const double v_rate = rate_of(
            [&] {
                for (std::size_t i = 0; i < samples; ++i)
                    virt[i] = bank.code(xs[i], ys[i]);
                benchmark::DoNotOptimize(virt.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                compiled_bank.codes_into(xs, ys, kern);
                benchmark::DoNotOptimize(kern.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({.name = "zoning",
                          .unit = "samples/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .passed = virt == kern});
    }

    // --- Stage 3: fused zoning + run-length events ----------------------
    {
        std::vector<capture::CodeEvent> virt;
        std::vector<capture::CodeEvent> kern;
        std::vector<unsigned> codes;
        const double v_rate = rate_of(
            [&] {
                capture::Chronogram::encode_events(xs, ys, trace_dt, bank, virt);
                benchmark::DoNotOptimize(virt.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                compiled_bank.codes_into(xs, ys, codes);
                capture::Chronogram::encode_codes(codes, trace_dt, kern);
                benchmark::DoNotOptimize(kern.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({.name = "zoning+events",
                          .unit = "samples/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .passed = events_equal(virt, kern)});
    }

    // --- Stage 4: fused end-to-end NDF (serial, then N threads) ---------
    {
        core::PipelineOptions virt_opts;
        virt_opts.samples_per_period = samples;
        virt_opts.compiled_kernels = false;
        core::PipelineOptions kern_opts = virt_opts;
        kern_opts.compiled_kernels = true;
        core::SignaturePipeline virt_pipe(make_bench_bank(), stimulus, virt_opts);
        core::SignaturePipeline kern_pipe(make_bench_bank(), stimulus, kern_opts);
        virt_pipe.set_golden(golden_cut);
        kern_pipe.set_golden(golden_cut);

        std::vector<filter::BehaviouralCut> universe;
        universe.reserve(universe_size);
        for (std::size_t i = 0; i < universe_size; ++i) {
            const double half = static_cast<double>(universe_size) / 2.0;
            const double dev = 0.2 * (static_cast<double>(i) - half) / half;
            universe.emplace_back(core::paper_biquad().with_f0_shift(dev));
        }
        std::vector<const filter::Cut*> raw;
        for (const auto& c : universe)
            raw.push_back(&c);

        std::vector<double> ndf_virt(raw.size());
        std::vector<double> ndf_kern(raw.size());
        const double v_rate = rate_of(
            [&] {
                core::NdfScratch scratch;
                for (std::size_t i = 0; i < raw.size(); ++i)
                    ndf_virt[i] = virt_pipe.ndf_of(*raw[i], scratch);
            },
            static_cast<double>(universe_size), min_seconds);
        const double k_rate = rate_of(
            [&] {
                core::NdfScratch scratch;
                for (std::size_t i = 0; i < raw.size(); ++i)
                    ndf_kern[i] = kern_pipe.ndf_of(*raw[i], scratch);
            },
            static_cast<double>(universe_size), min_seconds);
        stages.push_back({.name = "fused ndf",
                          .unit = "cuts/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .passed = ndf_virt == ndf_kern});

        // Batch engine at N threads on top of the compiled kernels: thread
        // scaling multiplies the single-core kernel win.
        const unsigned n_threads = default_thread_count();
        const core::BatchNdfEvaluator batch_virt(virt_pipe, {.threads = n_threads});
        const core::BatchNdfEvaluator batch_kern(kern_pipe, {.threads = n_threads});
        std::vector<double> batch_v;
        std::vector<double> batch_k;
        const double bv_rate = rate_of(
            [&] { batch_v = batch_virt.evaluate(raw); },
            static_cast<double>(universe_size), min_seconds);
        const double bk_rate = rate_of(
            [&] { batch_k = batch_kern.evaluate(raw); },
            static_cast<double>(universe_size), min_seconds);
        stages.push_back({.name = "fused ndf",
                          .unit = "cuts/s",
                          .threads = n_threads,
                          .virtual_rate = bv_rate,
                          .compiled_rate = bk_rate,
                          .passed = batch_v == ndf_virt && batch_k == ndf_virt});
    }

    // --- Stage 5: vecmath sin kernel vs libm ----------------------------
    // The polynomial kernel's throughput win over libm, gated on the
    // documented accuracy contract: every lane within 2 ULP of std::sin.
    {
        Rng rng(0x5eedbeefULL);
        std::vector<double> args(samples);
        for (double& a : args)
            a = rng.uniform(-2000.0, 2000.0);
        std::vector<double> libm(samples);
        std::vector<double> fast(samples);
        const double v_rate = rate_of(
            [&] {
                for (std::size_t i = 0; i < samples; ++i)
                    libm[i] = std::sin(args[i]);
                benchmark::DoNotOptimize(libm.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                kernels::vecmath::sin_batch(args.data(), fast.data(), samples);
                benchmark::DoNotOptimize(fast.data());
            },
            static_cast<double>(samples), min_seconds);
        std::uint64_t worst = 0;
        for (std::size_t i = 0; i < samples; ++i)
            worst = std::max(worst,
                             kernels::vecmath::ulp_distance(libm[i], fast[i]));
        stages.push_back({.name = "sin (vecmath)",
                          .unit = "sines/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .gate = "ulp<=2",
                          .passed = worst <= 2,
                          .measure = static_cast<double>(worst)});
    }

    // --- Stage 6: fast_math multitone sampling vs the exact kernel ------
    // Per-sample error budget: each tone's sine is within 2 ULP, so the
    // summed sample stays within 2*tones ULP of full scale.
    {
        const double period = stimulus.period();
        const auto cw = kernels::CompiledWaveform::compile(stimulus);
        std::vector<double> exact;
        std::vector<double> fast;
        const double v_rate = rate_of(
            [&] {
                cw->sample_into(0.0, period, samples, exact);
                benchmark::DoNotOptimize(exact.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                cw->sample_into(0.0, period, samples, fast,
                                SampleMode::fast_math);
                benchmark::DoNotOptimize(fast.data());
            },
            static_cast<double>(samples), min_seconds);
        const double full_scale = stimulus.max_abs_excursion();
        const double ulp_fs = kernels::vecmath::ulp_of(full_scale);
        const double tol =
            2.0 * static_cast<double>(stimulus.tones().size()) * ulp_fs;
        double worst = 0.0;
        for (std::size_t i = 0; i < samples; ++i)
            worst = std::max(worst, std::abs(exact[i] - fast[i]));
        stages.push_back({.name = "sampling fast_math",
                          .unit = "samples/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .gate = "abs<=2*tones*ulp(fs)",
                          .passed = worst <= tol,
                          .measure = ulp_fs > 0.0 ? worst / ulp_fs : 0.0});
    }

    // --- Stage 6b: fast_math zoning vs the exact compiled pass ----------
    // The EKV softplus pairs batched through vecmath. Codes may differ
    // from exact only for samples whose comparator current sits within
    // the softplus tolerance of zero — a handful of boundary-adjacent
    // samples at most.
    {
        std::vector<unsigned> exact_codes;
        std::vector<unsigned> fast_codes;
        const double v_rate = rate_of(
            [&] {
                compiled_bank.codes_into(xs, ys, exact_codes);
                benchmark::DoNotOptimize(exact_codes.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                compiled_bank.codes_into(xs, ys, fast_codes,
                                         SampleMode::fast_math);
                benchmark::DoNotOptimize(fast_codes.data());
            },
            static_cast<double>(samples), min_seconds);
        std::size_t flips = 0;
        for (std::size_t i = 0; i < samples; ++i)
            flips += exact_codes[i] != fast_codes[i] ? 1u : 0u;
        stages.push_back({.name = "zoning fast_math",
                          .unit = "samples/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .gate = "flips<=16",
                          .passed = flips <= 16,
                          .measure = static_cast<double>(flips)});
    }

    // --- Stage 7: stimulus trace cache vs resampling --------------------
    // A cache hit must replay the exact sampling bit for bit; the win is
    // the sine work it skips.
    {
        const double period = stimulus.period();
        const auto cw = kernels::CompiledWaveform::compile(stimulus);
        auto& cache = core::StimulusTraceCache::instance();
        const std::string key =
            core::stimulus_trace_key(stimulus, samples, SampleMode::exact);
        std::vector<double> fresh;
        std::vector<double> cached(samples);
        const double v_rate = rate_of(
            [&] {
                cw->sample_into(0.0, period, samples, fresh);
                benchmark::DoNotOptimize(fresh.data());
            },
            static_cast<double>(samples), min_seconds);
        const double k_rate = rate_of(
            [&] {
                const auto trace = cache.find_or_compute(key, [&] {
                    std::vector<double> t;
                    cw->sample_into(0.0, period, samples, t);
                    return t;
                });
                std::copy(trace->begin(), trace->end(), cached.begin());
                benchmark::DoNotOptimize(cached.data());
            },
            static_cast<double>(samples), min_seconds);
        stages.push_back({.name = "trace fill (cached)",
                          .unit = "samples/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .passed = fresh == cached});
    }

    // --- Stage 8: fused NDF with fast_math (serial) ---------------------
    // The tentpole number: exact pipeline vs fast_math pipeline over the
    // same behavioural universe. Gated on (a) the NDF staying within a
    // small code-flip budget of the exact result — a 2-ULP sample
    // perturbation can only flip zone codes for samples sitting on a
    // boundary — and (b) the trace cache proving the whole universe cost
    // at most one stimulus sampling (the fast-mode miss; the exact-mode
    // trace is already resident from stage 4).
    {
        core::PipelineOptions exact_opts;
        exact_opts.samples_per_period = samples;
        exact_opts.compiled_kernels = true;
        core::PipelineOptions fast_opts = exact_opts;
        fast_opts.fast_math = true;
        const std::size_t misses_before =
            core::StimulusTraceCache::instance().misses();
        core::SignaturePipeline exact_pipe(make_bench_bank(), stimulus,
                                           exact_opts);
        core::SignaturePipeline fast_pipe(make_bench_bank(), stimulus,
                                          fast_opts);
        exact_pipe.set_golden(golden_cut);
        fast_pipe.set_golden(golden_cut);

        std::vector<filter::BehaviouralCut> universe;
        universe.reserve(universe_size);
        for (std::size_t i = 0; i < universe_size; ++i) {
            const double half = static_cast<double>(universe_size) / 2.0;
            const double dev = 0.2 * (static_cast<double>(i) - half) / half;
            universe.emplace_back(core::paper_biquad().with_f0_shift(dev));
        }

        std::vector<double> ndf_exact(universe.size());
        std::vector<double> ndf_fast(universe.size());
        const double v_rate = rate_of(
            [&] {
                core::NdfScratch scratch;
                for (std::size_t i = 0; i < universe.size(); ++i)
                    ndf_exact[i] = exact_pipe.ndf_of(universe[i], scratch);
            },
            static_cast<double>(universe_size), min_seconds);
        const double k_rate = rate_of(
            [&] {
                core::NdfScratch scratch;
                for (std::size_t i = 0; i < universe.size(); ++i)
                    ndf_fast[i] = fast_pipe.ndf_of(universe[i], scratch);
            },
            static_cast<double>(universe_size), min_seconds);
        const std::size_t samplings =
            core::StimulusTraceCache::instance().misses() - misses_before;
        double worst = 0.0;
        for (std::size_t i = 0; i < universe.size(); ++i)
            worst = std::max(worst, std::abs(ndf_exact[i] - ndf_fast[i]));
        const double tol = 16.0 / static_cast<double>(samples);
        stages.push_back({.name = "fused ndf fast_math",
                          .unit = "cuts/s",
                          .virtual_rate = v_rate,
                          .compiled_rate = k_rate,
                          .gate = "dndf<=16/spp & <=1 sampling",
                          .passed = worst <= tol && samplings <= 1,
                          .measure = worst});
        out << "trace cache: " << samplings << " stimulus sampling(s) for "
            << 2 * universe_size << " member evaluations across two modes\n";
    }

    bool all_identical = true; // bit-gated rows only (the legacy aggregate)
    bool all_passed = true;    // every gate, tolerance rows included
    TextTable t({"stage", "threads", "virtual", "compiled", "unit", "speedup",
                 "gate", "pass"});
    for (const StageResult& s : stages) {
        if (s.bit_gate())
            all_identical = all_identical && s.passed;
        all_passed = all_passed && s.passed;
        t.add_row({s.name, std::to_string(s.threads),
                   format_double(s.virtual_rate, 4),
                   format_double(s.compiled_rate, 4), s.unit,
                   format_double(s.speedup(), 2), s.gate,
                   s.passed ? "yes" : "NO (BUG)"});
    }
    t.print(out);
    if (!all_passed)
        out << "ERROR: a kernel gate failed (divergence from the exact path "
               "or a missed tolerance)\n";

    write_json(json_path, smoke, samples, universe_size, bank, compiled_bank,
               stages, all_identical, all_passed);
    return all_passed;
}

// --- google-benchmark timers (full mode only) ---------------------------

void BM_ZoningVirtual(benchmark::State& state) {
    const monitor::MonitorBank bank = make_bench_bank();
    std::vector<double> xs;
    std::vector<double> ys;
    double dt = 0.0;
    filter::BehaviouralCut(core::paper_biquad())
        .respond_into(core::paper_stimulus(), 4096, xs, ys, dt);
    std::vector<unsigned> codes(xs.size());
    for (auto _ : state) {
        for (std::size_t i = 0; i < xs.size(); ++i)
            codes[i] = bank.code(xs[i], ys[i]);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_ZoningVirtual)->Unit(benchmark::kMillisecond);

void BM_ZoningCompiled(benchmark::State& state) {
    const auto compiled = kernels::CompiledMonitorBank::compile(make_bench_bank());
    std::vector<double> xs;
    std::vector<double> ys;
    double dt = 0.0;
    filter::BehaviouralCut(core::paper_biquad())
        .respond_into(core::paper_stimulus(), 4096, xs, ys, dt);
    std::vector<unsigned> codes;
    for (auto _ : state) {
        compiled.codes_into(xs, ys, codes);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_ZoningCompiled)->Unit(benchmark::kMillisecond);

void BM_FusedNdf(benchmark::State& state) {
    core::PipelineOptions opts;
    opts.samples_per_period = 4096;
    opts.compiled_kernels = state.range(0) != 0;
    core::SignaturePipeline pipe(make_bench_bank(), core::paper_stimulus(), opts);
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut cut(core::paper_biquad().with_f0_shift(0.1));
    core::NdfScratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(cut, scratch));
}
BENCHMARK(BM_FusedNdf)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string json_path = "bench_kernels.json";
    std::vector<char*> bench_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            bench_args.push_back(argv[i]);
    }
    const bool gates_passed = run_report(std::cout, smoke, json_path);
    if (!smoke) {
        int bench_argc = static_cast<int>(bench_args.size());
        benchmark::Initialize(&bench_argc, bench_args.data());
        benchmark::RunSpecifiedBenchmarks();
    }
    return gates_passed ? 0 : 1;
}
