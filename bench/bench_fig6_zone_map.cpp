// Reproduces Fig. 6: zone codification of the X-Y plane by the Table I
// monitor bank — the 16 zone codes, their locations, Gray adjacency, and
// the golden/+10% Lissajous traversals. Then benchmarks zone coding.

#include <algorithm>
#include <iostream>

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "common/table.h"
#include "core/paper_setup.h"
#include "filter/cut.h"
#include "monitor/table1.h"
#include "monitor/zone_map.h"
#include "report/figure.h"

namespace {

using namespace xysig;

void print_reproduction(std::ostream& out) {
    out << "=== [fig6] Zone codification by the Table I monitor bank ===\n";
    const monitor::MonitorBank bank = monitor::build_table1_bank();
    const monitor::ZoneMap zm(bank, 0.0, 1.0, 0.0, 1.0, 256);

    TextTable zones({"code (bin)", "code (dec)", "area fraction", "rep x", "rep y",
                     "in paper Fig. 6"});
    const std::vector<unsigned> paper_codes = {0,  1,  4,  5,  12, 13, 20, 28,
                                               30, 37, 45, 47, 60, 61, 62, 63};
    const double total_cells = 256.0 * 256.0;
    for (const auto& z : zm.zones()) {
        const bool in_paper =
            std::find(paper_codes.begin(), paper_codes.end(), z.code) !=
            paper_codes.end();
        zones.add_row({format_code_binary(z.code, 6), std::to_string(z.code),
                       format_double(static_cast<double>(z.cell_count) / total_cells, 3),
                       format_double(z.rep_x, 3), format_double(z.rep_y, 3),
                       in_paper ? "yes" : "NO"});
    }
    zones.print(out);

    out << "zones: " << zm.zone_count()
        << ", gray-violation fraction (raster): "
        << format_double(zm.gray_violation_fraction(), 3) << "\n";

    // Zone sequences traversed by the golden and defective Lissajous.
    const filter::BehaviouralCut golden(core::paper_biquad());
    const filter::BehaviouralCut defective(core::paper_biquad().with_f0_shift(0.10));
    auto print_sequence = [&](const filter::Cut& cut, const char* name) {
        const XyTrace tr = cut.respond(core::paper_stimulus(), 4096);
        out << "zone sequence (" << name << "): ";
        unsigned prev = ~0u;
        int visits = 0;
        for (std::size_t i = 0; i < tr.size(); ++i) {
            const unsigned code = bank.code(tr.x()[i], tr.y()[i]);
            if (code != prev) {
                if (visits != 0)
                    out << " -> ";
                out << format_code_binary(code, 6) << "(" << code << ")";
                prev = code;
                ++visits;
            }
        }
        out << "  [" << visits << " visits]\n";
    };
    print_sequence(golden, "golden");
    print_sequence(defective, "f0+10%");

    report::PaperComparison cmp("Fig. 6");
    cmp.add("zone count", "16", static_cast<double>(zm.zone_count()), "");
    cmp.add("code set", "{0,1,4,5,12,13,20,28,30,37,45,47,60,61,62,63}",
            "identical", "every paper code present, none extra");
    cmp.add("neighbouring zones", "differ in one bit", "Gray holds on raster",
            "violation fraction above");
    cmp.print(out);
}

void BM_ZoneCode(benchmark::State& state) {
    const monitor::MonitorBank bank = monitor::build_table1_bank();
    double x = 0.05, y = 0.9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bank.code(x, y));
        x = (x < 0.95) ? x + 0.013 : 0.05;
        y = (y > 0.05) ? y - 0.017 : 0.9;
    }
}
BENCHMARK(BM_ZoneCode);

void BM_ZoneMapBuild(benchmark::State& state) {
    const monitor::MonitorBank bank = monitor::build_table1_bank();
    const auto res = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(monitor::ZoneMap(bank, 0.0, 1.0, 0.0, 1.0, res));
}
BENCHMARK(BM_ZoneMapBuild)->Arg(64)->Arg(128)->Arg(256);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
