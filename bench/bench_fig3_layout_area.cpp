// Reproduces Fig. 3: the monitor layout — common-centroid split-by-four
// placement and the occupied area (paper: 53.54 um^2 core, 11.64 x 4.6 um,
// 116.1 um^2 including the output stage). Then benchmarks the placer.

#include <iostream>

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "common/table.h"
#include "layout/area.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

void print_placement(std::ostream& out, const layout::Placement& p) {
    out << "common-centroid placement (device index per unit cell, M1..M8 -> "
           "0..7):\n";
    for (std::size_t r = 0; r < p.rows(); ++r) {
        out << "  ";
        for (std::size_t c = 0; c < p.cols(); ++c) {
            const int d = p.device_at(r, c);
            out << (d < 0 ? std::string("-") : std::to_string(d)) << ' ';
        }
        out << '\n';
    }
}

void print_reproduction(std::ostream& out) {
    out << "=== [fig3] Monitor layout: common-centroid placement + area ===\n";

    const layout::Placement p = layout::common_centroid_place(8, 4, 4);
    print_placement(out, p);

    TextTable props({"property", "value"});
    props.add_row({"devices", "8 (M1..M4 inputs, M5..M8 loads)"});
    props.add_row({"units per device", "4 (paper: transistors split into four)"});
    props.add_row({"common centroid", p.is_common_centroid() ? "yes" : "NO"});
    props.add_row({"dispersion (cell pitches)", format_double(p.dispersion(), 4)});
    props.print(out);

    const auto cfg = monitor::table1_config(1);
    const layout::AreaReport core = layout::monitor_core_area(cfg, 2e-6);
    const layout::AreaReport total = layout::monitor_total_area(cfg, 2e-6);

    report::PaperComparison cmp("Fig. 3 layout");
    cmp.add("core area (um^2)", "53.54", core.area_um2(), "calibrated cell model");
    cmp.add("core width (um)", "11.64", core.width_um(), "");
    cmp.add("core height (um)", "4.6", core.height_um(), "");
    cmp.add("total area with output stage (um^2)", "116.1", total.area * 1e12, "");
    cmp.add("technology", "ST 65 nm CMOS", "65 nm-flavoured rule set",
            "see DESIGN.md substitution table");
    cmp.print(out);
}

void BM_CommonCentroidPlace(benchmark::State& state) {
    const int devices = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(layout::common_centroid_place(devices, 4, 4));
}
BENCHMARK(BM_CommonCentroidPlace)->Arg(2)->Arg(8)->Arg(32);

void BM_CentroidVerification(benchmark::State& state) {
    const layout::Placement p = layout::common_centroid_place(8, 4, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.is_common_centroid());
}
BENCHMARK(BM_CentroidVerification);

void BM_AreaModel(benchmark::State& state) {
    const auto cfg = monitor::table1_config(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(layout::monitor_total_area(cfg, 2e-6));
}
BENCHMARK(BM_AreaModel);

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
