// Reproduces Fig. 7: the chronogram of digital signatures (decimal zone
// codes over one 200 us period) for the golden and +10% f0 circuits, the
// Hamming-distance chronogram, and the NDF anchor (paper: 0.1021). The
// signature is produced by the Fig. 5 capture unit (10 MHz, 16-bit).
// Then benchmarks signature capture and NDF evaluation.

#include <iostream>

#include <benchmark/benchmark.h>

#include "capture/capture_unit.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/batch_ndf.h"
#include "core/ndf.h"
#include "core/paper_setup.h"
#include "core/pipeline.h"
#include "monitor/table1.h"
#include "report/figure.h"

namespace {

using namespace xysig;

core::SignaturePipeline make_pipeline() {
    core::PipelineOptions opts;
    opts.samples_per_period = 8192;
    opts.quantise = true;
    opts.capture.f_clk = 10e6;
    opts.capture.counter_bits = 16;
    return core::SignaturePipeline(monitor::build_table1_bank(),
                                   core::paper_stimulus(), opts);
}

report::Series chronogram_series(const capture::Chronogram& ch, const char* name) {
    report::Series s;
    s.name = name;
    // Staircase rendering: one point per event plus the segment end.
    for (std::size_t i = 0; i < ch.events().size(); ++i) {
        const auto& ev = ch.events()[i];
        const double t_next = ev.t + ch.dwell(i);
        s.xs.push_back(ev.t * 1e6);
        s.ys.push_back(ev.code);
        s.xs.push_back(t_next * 1e6);
        s.ys.push_back(ev.code);
    }
    return s;
}

void print_signature_table(std::ostream& out, const capture::Signature& sig,
                           const char* name) {
    out << "signature (" << name << "): {(Zi, Di)} with Di in ticks of "
        << format_double(1e9 / sig.f_clk(), 3) << " ns\n";
    TextTable t({"i", "Zi (bin)", "Zi (dec)", "Di (ticks)", "Di (us)"});
    for (std::size_t i = 0; i < sig.size(); ++i) {
        const auto& e = sig.entries()[i];
        t.add_row({std::to_string(i + 1), format_code_binary(e.code, 6),
                   std::to_string(e.code), std::to_string(e.ticks),
                   format_double(static_cast<double>(e.ticks) / sig.f_clk() * 1e6, 4)});
    }
    t.print(out);
}

void print_reproduction(std::ostream& out) {
    out << "=== [fig7] Signature chronograms and Hamming distance (+10% f0) "
           "===\n";
    core::SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut golden(core::paper_biquad());
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));

    const auto sig_golden = pipe.capture(golden);
    const auto sig_defect = pipe.capture(defective);
    print_signature_table(out, sig_golden.signature, "golden");
    print_signature_table(out, sig_defect.signature, "f0+10%");

    const auto ch_golden = sig_golden.signature.to_chronogram();
    const auto ch_defect = sig_defect.signature.to_chronogram();

    report::Figure fig("fig7a", "Chronogram of digital signatures", "time (us)",
                       "decimal code");
    fig.add_series(chronogram_series(ch_golden, "golden"));
    fig.add_series(chronogram_series(ch_defect, "f0+10%"));
    fig.print(out);

    const auto profile = core::hamming_profile(ch_defect, ch_golden);
    report::Figure hfig("fig7b", "Hamming distance chronogram", "time (us)",
                        "dH");
    report::Series hs;
    hs.name = "dH(golden, f0+10%)";
    for (const auto& seg : profile) {
        hs.xs.push_back(seg.t_begin * 1e6);
        hs.ys.push_back(seg.distance);
        hs.xs.push_back(seg.t_end * 1e6);
        hs.ys.push_back(seg.distance);
    }
    hfig.add_series(std::move(hs));
    hfig.print(out);

    const double ndf_value = core::ndf(ch_defect, ch_golden);
    unsigned max_d = 0;
    for (const auto& seg : profile)
        max_d = std::max(max_d, seg.distance);

    report::PaperComparison cmp("Fig. 7");
    cmp.add("NDF (+10% f0)", "0.1021", ndf_value,
            "stimulus/CUT calibrated, see EXPERIMENTS.md");
    cmp.add("period", "200 us", ch_golden.period() * 1e6, "us");
    cmp.add("max Hamming distance", "2", static_cast<double>(max_d),
            "short dH=2 episode when a zone is skipped");
    cmp.add("golden zone visits", "~16 (Fig. 7 upper)",
            static_cast<double>(ch_golden.zone_visits()), "");
    cmp.print(out);
}

void BM_CaptureSignature(benchmark::State& state) {
    core::SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut golden(core::paper_biquad());
    const XyTrace tr = pipe.trace(golden);
    const capture::CaptureUnit unit(pipe.options().capture);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.capture(tr, pipe.bank()));
}
BENCHMARK(BM_CaptureSignature);

void BM_NdfExact(benchmark::State& state) {
    core::SignaturePipeline pipe = make_pipeline();
    const filter::BehaviouralCut golden(core::paper_biquad());
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    const auto a = pipe.chronogram(golden);
    const auto b = pipe.chronogram(defective);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::ndf(a, b));
}
BENCHMARK(BM_NdfExact);

void BM_FullPipelineNdf(benchmark::State& state) {
    core::SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(defective));
}
BENCHMARK(BM_FullPipelineNdf);

void BM_FullPipelineNdfScratch(benchmark::State& state) {
    // The buffer-reusing path the batch engine runs per worker thread.
    core::SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    const filter::BehaviouralCut defective(
        core::paper_biquad().with_f0_shift(0.10));
    core::NdfScratch scratch;
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.ndf_of(defective, scratch));
}
BENCHMARK(BM_FullPipelineNdfScratch);

void BM_BatchNdfUniverse(benchmark::State& state) {
    // A 64-CUT fault universe against one golden signature through the
    // batch engine; range(0) is the worker-thread count.
    core::SignaturePipeline pipe = make_pipeline();
    pipe.set_golden(filter::BehaviouralCut(core::paper_biquad()));
    std::vector<filter::BehaviouralCut> universe;
    for (int i = 0; i < 64; ++i)
        universe.emplace_back(
            core::paper_biquad().with_f0_shift((i - 32) / 200.0));
    std::vector<const filter::Cut*> raw;
    for (const auto& c : universe)
        raw.push_back(&c);
    const core::BatchNdfEvaluator batch(
        pipe, {.threads = static_cast<unsigned>(state.range(0))});
    for (auto _ : state)
        benchmark::DoNotOptimize(batch.evaluate(raw));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchNdfUniverse)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

} // namespace

int main(int argc, char** argv) {
    print_reproduction(std::cout);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
